package host

import (
	"context"
	"fmt"
	"sync"
)

// ErrShed is returned by Acquire when a tenant's concurrency slots and
// wait queue are both full. The serving layer maps it to 429 with a
// Retry-After hint.
var ErrShed = fmt.Errorf("host: tenant over concurrency quota, request shed")

// AdmissionConfig sizes the per-tenant admission controller.
//
// The rate limiter (RateLimiter) bounds *offered* load per app over
// time; admission control bounds *concurrent* work per tenant at each
// instant, which is what actually protects latency when queries have
// wildly different costs. The two compose: a burst that passes the
// token bucket still waits for a concurrency slot.
type AdmissionConfig struct {
	// Slots is the default number of in-flight queries per tenant
	// (minimum 1; 0 means DefaultSlots).
	Slots int
	// Queue is how many requests per tenant may wait for a slot
	// beyond the in-flight set; the queue is deadline-aware, so a
	// waiter whose ctx expires leaves immediately. 0 means no
	// queueing: over-quota requests are shed at once.
	Queue int
	// TenantSlots overrides Slots for specific tenants (the knob a
	// platform operator turns for a paying designer).
	TenantSlots map[string]int
	// RetryAfterSeconds is the Retry-After hint sent with 429
	// responses (0 means DefaultRetryAfterSeconds).
	RetryAfterSeconds int
}

// Admission defaults.
const (
	DefaultSlots             = 4
	DefaultRetryAfterSeconds = 1
)

// AdmissionStats is a point-in-time counter snapshot, exported on the
// daemon's /statusz page.
type AdmissionStats struct {
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`   // admissions that waited in queue first
	Shed     int64 `json:"shed"`     // rejected: slots and queue both full
	Expired  int64 `json:"expired"`  // left the queue because ctx ended
	Waiting  int   `json:"waiting"`  // currently queued across tenants
	InFlight int   `json:"inFlight"` // currently admitted across tenants
}

// AdmissionController enforces per-tenant concurrency quotas with a
// bounded, deadline-aware wait queue per tenant.
type AdmissionController struct {
	cfg AdmissionConfig

	mu    sync.Mutex
	gates map[string]*tenantGate

	admitted int64
	queued   int64
	shed     int64
	expired  int64
}

// tenantGate is one tenant's semaphore. sem is buffered to the
// tenant's slot quota; holding a token = one in-flight query.
type tenantGate struct {
	sem     chan struct{}
	waiting int // guarded by the controller mutex
}

// NewAdmissionController builds a controller from cfg, applying
// defaults for zero fields.
func NewAdmissionController(cfg AdmissionConfig) *AdmissionController {
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = DefaultRetryAfterSeconds
	}
	return &AdmissionController{cfg: cfg, gates: make(map[string]*tenantGate)}
}

// RetryAfterSeconds is the hint the serving layer attaches to shed
// responses.
func (ac *AdmissionController) RetryAfterSeconds() int { return ac.cfg.RetryAfterSeconds }

func (ac *AdmissionController) gate(tenant string) *tenantGate {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	g, ok := ac.gates[tenant]
	if !ok {
		n := ac.cfg.Slots
		if over, ok := ac.cfg.TenantSlots[tenant]; ok && over > 0 {
			n = over
		}
		g = &tenantGate{sem: make(chan struct{}, n)}
		ac.gates[tenant] = g
	}
	return g
}

// Acquire admits one query for tenant, blocking in the tenant's wait
// queue while its slots are full. It returns a release function that
// MUST be called exactly once when the query finishes. Errors:
// ErrShed when slots and queue are both full, or ctx.Err() when the
// caller's deadline lands while queued.
func (ac *AdmissionController) Acquire(ctx context.Context, tenant string) (release func(), err error) {
	g := ac.gate(tenant)
	rel := func() { <-g.sem }

	// Fast path: a free slot admits without queueing.
	select {
	case g.sem <- struct{}{}:
		ac.count(&ac.admitted)
		return rel, nil
	default:
	}

	// Slow path: join the bounded wait queue, or shed.
	ac.mu.Lock()
	if g.waiting >= ac.cfg.Queue {
		ac.shed++
		ac.mu.Unlock()
		return nil, ErrShed
	}
	g.waiting++
	ac.mu.Unlock()

	select {
	case g.sem <- struct{}{}:
		ac.mu.Lock()
		g.waiting--
		ac.admitted++
		ac.queued++
		ac.mu.Unlock()
		return rel, nil
	case <-ctx.Done():
		ac.mu.Lock()
		g.waiting--
		ac.expired++
		ac.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Waiting reports how many requests are queued for tenant right now
// (tests use it to sequence queue scenarios deterministically).
func (ac *AdmissionController) Waiting(tenant string) int {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	if g, ok := ac.gates[tenant]; ok {
		return g.waiting
	}
	return 0
}

func (ac *AdmissionController) count(field *int64) {
	ac.mu.Lock()
	*field++
	ac.mu.Unlock()
}

// Stats snapshots the controller's counters.
func (ac *AdmissionController) Stats() AdmissionStats {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	st := AdmissionStats{
		Admitted: ac.admitted,
		Queued:   ac.queued,
		Shed:     ac.shed,
		Expired:  ac.expired,
	}
	for _, g := range ac.gates {
		st.Waiting += g.waiting
		st.InFlight += len(g.sem)
	}
	return st
}
