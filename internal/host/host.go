// Package host implements the hosting side of the paper: "Regardless
// of how an application is distributed, its execution and the
// resources involved are always shouldered by Symphony." It keeps the
// registry of published applications and serves them over HTTP: a
// query endpoint returning the rendered HTML fragment, a click
// redirect that logs interactions for monetization, and the
// auto-generated JavaScript embed loader.
package host

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/app"
	"repro/internal/jsonw"
	"repro/internal/runtime"
)

// Registry stores published applications.
type Registry struct {
	mu   sync.RWMutex
	apps map[string]*app.Application
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{apps: make(map[string]*app.Application)}
}

// Publish validates and registers an application (replacing any
// previous version, which is how designers iterate).
func (r *Registry) Publish(a *app.Application) error {
	if err := a.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.apps[a.ID] = a
	return nil
}

// Unpublish removes an application.
func (r *Registry) Unpublish(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.apps[id]; !ok {
		return false
	}
	delete(r.apps, id)
	return true
}

// Get returns a published application.
func (r *Registry) Get(id string) (*app.Application, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.apps[id]
	return a, ok
}

// List returns published app IDs, sorted.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.apps))
	for id := range r.apps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Server hosts published applications.
type Server struct {
	Registry *Registry
	Executor *runtime.Executor
	Log      *analytics.Log
	// BaseURL is the public base of this host, used in generated
	// embed snippets.
	BaseURL string
	// Limiter meters per-app query load when non-nil; over-limit
	// queries get 429.
	Limiter *RateLimiter
	// Admission bounds per-tenant concurrency when non-nil: requests
	// over quota wait in a bounded queue or are shed with 429 +
	// Retry-After.
	Admission *AdmissionController
	// QueryTimeout caps each query's execution when positive; a query
	// that exceeds it is cancelled mid-evaluation and answered 504.
	QueryTimeout time.Duration
}

// queryContext derives the execution context for one request: the
// client's own context (so a dropped connection cancels the query)
// plus the server's per-query deadline.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.QueryTimeout > 0 {
		return context.WithTimeout(ctx, s.QueryTimeout)
	}
	return ctx, func() {}
}

// admit passes the request through admission control. It writes the
// error response and returns a nil release when the request should
// not proceed. Tenancy is the app's data tenant so that all of one
// designer's apps share a quota; apps without proprietary data fall
// back to the app ID.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, a *app.Application) (release func(), ok bool) {
	if s.Admission == nil {
		return func() {}, true
	}
	tenant := a.Tenant
	if tenant == "" {
		tenant = a.ID
	}
	rel, err := s.Admission.Acquire(ctx, tenant)
	switch {
	case err == nil:
		return rel, true
	case errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", strconv.Itoa(s.Admission.RetryAfterSeconds()))
		http.Error(w, "tenant over concurrency quota", http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "timed out waiting for admission", http.StatusGatewayTimeout)
	default:
		// Client went away while queued; any status works, nobody is
		// listening.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
	return nil, false
}

// writeQueryError maps an execution error to a status: deadline and
// cancellation become 504 (the query was cut off, not broken), all
// else 500.
func writeQueryError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// Handler returns the HTTP mux serving:
//
//	GET /query?app=ID&q=TEXT[&customer=C][&offset=N][&format=json]
//	GET /click?app=ID&url=TARGET    (302 redirect + click log)
//	GET /embed.js?app=ID            (the auto-generated loader)
//	GET /apps                        (published app listing, JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/click", s.handleClick)
	mux.HandleFunc("/embed.js", s.handleEmbed)
	mux.HandleFunc("/apps", s.handleApps)
	mux.HandleFunc("/rss", s.handleRSS)
	return mux
}

// handleRSS serves an application's results as an RSS 2.0 feed —
// search-driven applications become data sources themselves, closing
// the loop with the RSS upload path (one app's feed can be another
// designer's proprietary source).
func (s *Server) handleRSS(w http.ResponseWriter, r *http.Request) {
	appID := r.URL.Query().Get("app")
	a, ok := s.Registry.Get(appID)
	if !ok {
		http.Error(w, "unknown application", http.StatusNotFound)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	rel, ok := s.admit(ctx, w, a)
	if !ok {
		return
	}
	resp, err := s.Executor.Execute(ctx, a, runtime.Query{Text: r.URL.Query().Get("q")})
	rel()
	if err != nil {
		writeQueryError(w, err)
		return
	}
	type rssItem struct {
		Title       string `xml:"title"`
		Link        string `xml:"link,omitempty"`
		Description string `xml:"description,omitempty"`
	}
	type rssChannel struct {
		Title string    `xml:"title"`
		Items []rssItem `xml:"item"`
	}
	type rssDoc struct {
		XMLName struct{}   `xml:"rss"`
		Version string     `xml:"version,attr"`
		Channel rssChannel `xml:"channel"`
	}
	doc := rssDoc{Version: "2.0"}
	doc.Channel.Title = a.Name
	for _, block := range resp.Blocks {
		for _, item := range block.Items {
			ri := rssItem{Title: item["title"]}
			if ri.Title == "" {
				ri.Title = item["name"]
			}
			for _, f := range []string{"url", "detailurl", "link", "rentalurl"} {
				if v := item[f]; v != "" {
					ri.Link = v
					break
				}
			}
			for _, f := range []string{"description", "snippet", "notes", "synopsis"} {
				if v := item[f]; v != "" {
					ri.Description = v
					break
				}
			}
			doc.Channel.Items = append(doc.Channel.Items, ri)
		}
	}
	w.Header().Set("Content-Type", "application/rss+xml")
	out, err := xml.Marshal(doc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	appID := r.URL.Query().Get("app")
	a, ok := s.Registry.Get(appID)
	if !ok {
		http.Error(w, "unknown application", http.StatusNotFound)
		return
	}
	if s.Limiter != nil && !s.Limiter.Allow(appID) {
		http.Error(w, "application over query rate limit", http.StatusTooManyRequests)
		return
	}
	q := runtime.Query{
		Text:     r.URL.Query().Get("q"),
		Customer: r.URL.Query().Get("customer"),
	}
	if off := r.URL.Query().Get("offset"); off != "" {
		n, err := strconv.Atoi(off)
		if err != nil || n < 0 {
			http.Error(w, "bad offset", http.StatusBadRequest)
			return
		}
		q.Offset = n
	}
	if prefer := r.URL.Query().Get("prefer"); prefer != "" {
		q.Profile = &runtime.CustomerProfile{PreferTerms: []string{prefer}}
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	rel, ok := s.admit(ctx, w, a)
	if !ok {
		return
	}
	resp, err := s.Executor.Execute(ctx, a, q)
	rel()
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		// The one JSON endpoint on the end-user serving path: encoded
		// with the pooled streaming writer, not encoding/json, so a
		// saturated host does not allocate per response. TestQueryJSON
		// pins the body to the encoder output it replaced.
		w.Header().Set("Content-Type", "application/json")
		jw := jsonw.Get()
		jw.BeginObject()
		jw.Name("app")
		jw.String(resp.AppID)
		jw.Name("query")
		jw.String(resp.Query)
		jw.Name("html")
		jw.String(resp.HTML)
		jw.Name("blocks")
		jw.Int(len(resp.Blocks))
		jw.EndObject()
		jw.Newline()
		if _, err := w.Write(jw.Bytes()); err != nil {
			log.Printf("host: writing query response: %v", err)
		}
		jsonw.Put(jw)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, resp.HTML)
}

// handleClick logs the interaction and redirects to the target —
// "When a link is clicked in a Symphony-hosted application, it can be
// logged by the system."
func (s *Server) handleClick(w http.ResponseWriter, r *http.Request) {
	appID := r.URL.Query().Get("app")
	target := r.URL.Query().Get("url")
	if _, ok := s.Registry.Get(appID); !ok {
		http.Error(w, "unknown application", http.StatusNotFound)
		return
	}
	parsed, err := url.Parse(target)
	if err != nil || (parsed.Scheme != "http" && parsed.Scheme != "https" && parsed.Scheme != "ftp") {
		http.Error(w, "bad target", http.StatusBadRequest)
		return
	}
	if s.Log != nil {
		s.Log.Record(analytics.Event{
			App:      appID,
			Type:     analytics.EventClick,
			URL:      target,
			Customer: r.URL.Query().Get("customer"),
		})
	}
	http.Redirect(w, r, target, http.StatusFound)
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	appID := r.URL.Query().Get("app")
	if _, ok := s.Registry.Get(appID); !ok {
		http.Error(w, "unknown application", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/javascript")
	fmt.Fprint(w, EmbedJS(s.BaseURL, appID))
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	jw := jsonw.Get()
	jw.BeginArray()
	for _, id := range s.Registry.List() {
		jw.String(id)
	}
	jw.EndArray()
	jw.Newline()
	if _, err := w.Write(jw.Bytes()); err != nil {
		log.Printf("host: writing apps response: %v", err)
	}
	jsonw.Put(jw)
}

// EmbedJS is the auto-generated JavaScript loader the designer pastes
// into their page: it forwards the visitor's query to Symphony and
// injects the returned HTML (Fig 2's first and last arrows).
func EmbedJS(baseURL, appID string) string {
	return fmt.Sprintf(`(function(){
  var BASE=%q, APP=%q;
  window.symphonySearch=function(q){
    var xhr=new XMLHttpRequest();
    xhr.open("GET", BASE+"/query?app="+encodeURIComponent(APP)+"&q="+encodeURIComponent(q));
    xhr.onload=function(){
      document.getElementById("symphony-"+APP).innerHTML=xhr.responseText;
    };
    xhr.send();
  };
})();`, baseURL, appID)
}

// EmbedSnippet is the copy-and-paste HTML block for the designer's
// site: a container div, a search box wired to the loader, and the
// script tag.
func EmbedSnippet(baseURL, appID string) string {
	return fmt.Sprintf(`<div id="symphony-%s"></div>
<input type="search" onchange="symphonySearch(this.value)" placeholder="Search"/>
<script src="%s/embed.js?app=%s"></script>`, appID, baseURL, url.QueryEscape(appID))
}
