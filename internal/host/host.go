// Package host implements the hosting side of the paper: "Regardless
// of how an application is distributed, its execution and the
// resources involved are always shouldered by Symphony." It keeps the
// registry of published applications and serves them over HTTP: a
// query endpoint returning the rendered HTML fragment, a click
// redirect that logs interactions for monetization, and the
// auto-generated JavaScript embed loader.
package host

import (
	"context"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"

	"repro/internal/analytics"
	"repro/internal/app"
	"repro/internal/runtime"
)

// Registry stores published applications.
type Registry struct {
	mu   sync.RWMutex
	apps map[string]*app.Application
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{apps: make(map[string]*app.Application)}
}

// Publish validates and registers an application (replacing any
// previous version, which is how designers iterate).
func (r *Registry) Publish(a *app.Application) error {
	if err := a.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.apps[a.ID] = a
	return nil
}

// Unpublish removes an application.
func (r *Registry) Unpublish(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.apps[id]; !ok {
		return false
	}
	delete(r.apps, id)
	return true
}

// Get returns a published application.
func (r *Registry) Get(id string) (*app.Application, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.apps[id]
	return a, ok
}

// List returns published app IDs, sorted.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.apps))
	for id := range r.apps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Server hosts published applications.
type Server struct {
	Registry *Registry
	Executor *runtime.Executor
	Log      *analytics.Log
	// BaseURL is the public base of this host, used in generated
	// embed snippets.
	BaseURL string
	// Limiter meters per-app query load when non-nil; over-limit
	// queries get 429.
	Limiter *RateLimiter
}

// Handler returns the HTTP mux serving:
//
//	GET /query?app=ID&q=TEXT[&customer=C][&offset=N][&format=json]
//	GET /click?app=ID&url=TARGET    (302 redirect + click log)
//	GET /embed.js?app=ID            (the auto-generated loader)
//	GET /apps                        (published app listing, JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/click", s.handleClick)
	mux.HandleFunc("/embed.js", s.handleEmbed)
	mux.HandleFunc("/apps", s.handleApps)
	mux.HandleFunc("/rss", s.handleRSS)
	return mux
}

// handleRSS serves an application's results as an RSS 2.0 feed —
// search-driven applications become data sources themselves, closing
// the loop with the RSS upload path (one app's feed can be another
// designer's proprietary source).
func (s *Server) handleRSS(w http.ResponseWriter, r *http.Request) {
	appID := r.URL.Query().Get("app")
	a, ok := s.Registry.Get(appID)
	if !ok {
		http.Error(w, "unknown application", http.StatusNotFound)
		return
	}
	resp, err := s.Executor.Execute(context.Background(), a, runtime.Query{Text: r.URL.Query().Get("q")})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type rssItem struct {
		Title       string `xml:"title"`
		Link        string `xml:"link,omitempty"`
		Description string `xml:"description,omitempty"`
	}
	type rssChannel struct {
		Title string    `xml:"title"`
		Items []rssItem `xml:"item"`
	}
	type rssDoc struct {
		XMLName struct{}   `xml:"rss"`
		Version string     `xml:"version,attr"`
		Channel rssChannel `xml:"channel"`
	}
	doc := rssDoc{Version: "2.0"}
	doc.Channel.Title = a.Name
	for _, block := range resp.Blocks {
		for _, item := range block.Items {
			ri := rssItem{Title: item["title"]}
			if ri.Title == "" {
				ri.Title = item["name"]
			}
			for _, f := range []string{"url", "detailurl", "link", "rentalurl"} {
				if v := item[f]; v != "" {
					ri.Link = v
					break
				}
			}
			for _, f := range []string{"description", "snippet", "notes", "synopsis"} {
				if v := item[f]; v != "" {
					ri.Description = v
					break
				}
			}
			doc.Channel.Items = append(doc.Channel.Items, ri)
		}
	}
	w.Header().Set("Content-Type", "application/rss+xml")
	out, err := xml.Marshal(doc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	appID := r.URL.Query().Get("app")
	a, ok := s.Registry.Get(appID)
	if !ok {
		http.Error(w, "unknown application", http.StatusNotFound)
		return
	}
	if s.Limiter != nil && !s.Limiter.Allow(appID) {
		http.Error(w, "application over query rate limit", http.StatusTooManyRequests)
		return
	}
	q := runtime.Query{
		Text:     r.URL.Query().Get("q"),
		Customer: r.URL.Query().Get("customer"),
	}
	if off := r.URL.Query().Get("offset"); off != "" {
		n, err := strconv.Atoi(off)
		if err != nil || n < 0 {
			http.Error(w, "bad offset", http.StatusBadRequest)
			return
		}
		q.Offset = n
	}
	if prefer := r.URL.Query().Get("prefer"); prefer != "" {
		q.Profile = &runtime.CustomerProfile{PreferTerms: []string{prefer}}
	}
	resp, err := s.Executor.Execute(context.Background(), a, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			App    string `json:"app"`
			Query  string `json:"query"`
			HTML   string `json:"html"`
			Blocks int    `json:"blocks"`
		}{resp.AppID, resp.Query, resp.HTML, len(resp.Blocks)})
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, resp.HTML)
}

// handleClick logs the interaction and redirects to the target —
// "When a link is clicked in a Symphony-hosted application, it can be
// logged by the system."
func (s *Server) handleClick(w http.ResponseWriter, r *http.Request) {
	appID := r.URL.Query().Get("app")
	target := r.URL.Query().Get("url")
	if _, ok := s.Registry.Get(appID); !ok {
		http.Error(w, "unknown application", http.StatusNotFound)
		return
	}
	parsed, err := url.Parse(target)
	if err != nil || (parsed.Scheme != "http" && parsed.Scheme != "https" && parsed.Scheme != "ftp") {
		http.Error(w, "bad target", http.StatusBadRequest)
		return
	}
	if s.Log != nil {
		s.Log.Record(analytics.Event{
			App:      appID,
			Type:     analytics.EventClick,
			URL:      target,
			Customer: r.URL.Query().Get("customer"),
		})
	}
	http.Redirect(w, r, target, http.StatusFound)
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	appID := r.URL.Query().Get("app")
	if _, ok := s.Registry.Get(appID); !ok {
		http.Error(w, "unknown application", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/javascript")
	fmt.Fprint(w, EmbedJS(s.BaseURL, appID))
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Registry.List())
}

// EmbedJS is the auto-generated JavaScript loader the designer pastes
// into their page: it forwards the visitor's query to Symphony and
// injects the returned HTML (Fig 2's first and last arrows).
func EmbedJS(baseURL, appID string) string {
	return fmt.Sprintf(`(function(){
  var BASE=%q, APP=%q;
  window.symphonySearch=function(q){
    var xhr=new XMLHttpRequest();
    xhr.open("GET", BASE+"/query?app="+encodeURIComponent(APP)+"&q="+encodeURIComponent(q));
    xhr.onload=function(){
      document.getElementById("symphony-"+APP).innerHTML=xhr.responseText;
    };
    xhr.send();
  };
})();`, baseURL, appID)
}

// EmbedSnippet is the copy-and-paste HTML block for the designer's
// site: a container div, a search box wired to the loader, and the
// script tag.
func EmbedSnippet(baseURL, appID string) string {
	return fmt.Sprintf(`<div id="symphony-%s"></div>
<input type="search" onchange="symphonySearch(this.value)" placeholder="Search"/>
<script src="%s/embed.js?app=%s"></script>`, appID, baseURL, url.QueryEscape(appID))
}
