package app

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/webservice"
)

// Designer provides the no-code operations of the Fig 1 design
// interface as a fluent API. Each method corresponds to a GUI
// gesture: dropping a source onto the application, dropping elements
// onto a result layout, binding fields, attaching supplemental
// content to a result, and styling.
//
// Errors are accumulated and returned by Build, mirroring how the
// GUI surfaces problems at publish time rather than blocking each
// gesture.
type Designer struct {
	app  *Application
	errs []error
}

// NewDesigner starts a new application for a designer (owner) whose
// proprietary data lives in tenant.
func NewDesigner(id, name, owner, tenant string) *Designer {
	return &Designer{app: &Application{ID: id, Name: name, Owner: owner, Tenant: tenant}}
}

func (d *Designer) fail(format string, args ...any) *Designer {
	d.errs = append(d.errs, fmt.Errorf(format, args...))
	return d
}

// DropPrimary adds a primary content source (left-bar drag onto the
// application canvas).
func (d *Designer) DropPrimary(sc SourceConfig) *Designer {
	if sc.ID == "" {
		return d.fail("designer: primary source needs an id")
	}
	d.app.Primary = append(d.app.Primary, sc)
	return d
}

// DropSupplemental attaches a supplemental source driven by fields of
// primaryID's results, and places a source slot for it at the end of
// that primary's layout ("Supplemental content can be added by simply
// dragging additional data sources onto the current result layout").
func (d *Designer) DropSupplemental(primaryID string, sc SourceConfig) *Designer {
	if sc.ID == "" {
		return d.fail("designer: supplemental source needs an id")
	}
	var prim *SourceConfig
	for i := range d.app.Primary {
		if d.app.Primary[i].ID == primaryID {
			prim = &d.app.Primary[i]
		}
	}
	if prim == nil {
		return d.fail("designer: unknown primary source %q", primaryID)
	}
	if prim.Layout == nil {
		prim.Layout = &layout.Element{Type: layout.ElemContainer}
	}
	prim.Layout.Append(&layout.Element{Type: layout.ElemSourceSlot, SourceID: sc.ID})
	d.app.Supplemental = append(d.app.Supplemental, sc)
	return d
}

// SetResultLayout replaces a source's result layout wholesale.
func (d *Designer) SetResultLayout(sourceID string, el *layout.Element) *Designer {
	sc, ok := d.app.Source(sourceID)
	if !ok {
		return d.fail("designer: unknown source %q", sourceID)
	}
	sc.Layout = el
	return d
}

// UseTemplate instantiates a wizard template as sourceID's layout.
func (d *Designer) UseTemplate(sourceID, template string, fields map[string]string) *Designer {
	sc, ok := d.app.Source(sourceID)
	if !ok {
		return d.fail("designer: unknown source %q", sourceID)
	}
	el, err := layout.FromTemplate(template, fields)
	if err != nil {
		return d.fail("designer: %v", err)
	}
	// Preserve source slots already attached to this layout.
	if sc.Layout != nil {
		for _, slot := range sc.Layout.SourceSlots() {
			el.Append(&layout.Element{Type: layout.ElemSourceSlot, SourceID: slot})
		}
	}
	sc.Layout = el
	d.app.Theme = template
	return d
}

// AddElement appends an element to a source's result layout (a drop
// onto the layout panel).
func (d *Designer) AddElement(sourceID string, el *layout.Element) *Designer {
	sc, ok := d.app.Source(sourceID)
	if !ok {
		return d.fail("designer: unknown source %q", sourceID)
	}
	if sc.Layout == nil {
		sc.Layout = &layout.Element{Type: layout.ElemContainer}
	}
	sc.Layout.Append(el)
	return d
}

// SetSearchFields configures which fields of a proprietary source the
// end-user query searches ("configures the application to search by
// title, producer, and description").
func (d *Designer) SetSearchFields(sourceID string, fields ...string) *Designer {
	sc, ok := d.app.Source(sourceID)
	if !ok {
		return d.fail("designer: unknown source %q", sourceID)
	}
	sc.SearchFields = fields
	return d
}

// SetDriveFields selects the primary-result fields that parameterize
// a supplemental source and the query template over them.
func (d *Designer) SetDriveFields(sourceID, queryTemplate string, fields ...string) *Designer {
	sc, ok := d.app.Source(sourceID)
	if !ok {
		return d.fail("designer: unknown source %q", sourceID)
	}
	sc.DriveFields = fields
	sc.QueryTemplate = queryTemplate
	return d
}

// RestrictSites applies site restriction to an engine source.
func (d *Designer) RestrictSites(sourceID string, sites ...string) *Designer {
	sc, ok := d.app.Source(sourceID)
	if !ok {
		return d.fail("designer: unknown source %q", sourceID)
	}
	sc.Sites = sites
	return d
}

// SetStylesheet attaches a stylesheet for presentation control.
func (d *Designer) SetStylesheet(ss *layout.Stylesheet) *Designer {
	d.app.Stylesheet = ss
	return d
}

// ConfigureService sets the service definition of a service source.
func (d *Designer) ConfigureService(sourceID string, def webservice.Definition) *Designer {
	sc, ok := d.app.Source(sourceID)
	if !ok {
		return d.fail("designer: unknown source %q", sourceID)
	}
	sc.Service = def
	return d
}

// Build validates and returns the application.
func (d *Designer) Build() (*Application, error) {
	if len(d.errs) > 0 {
		return nil, fmt.Errorf("designer: %d error(s), first: %w", len(d.errs), d.errs[0])
	}
	if err := d.app.Validate(); err != nil {
		return nil, err
	}
	return d.app, nil
}

// App returns the application under construction without validation,
// for inspection in tests and tooling.
func (d *Designer) App() *Application { return d.app }

// Errors returns accumulated designer errors.
func (d *Designer) Errors() []error { return d.errs }
