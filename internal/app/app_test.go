package app

import (
	"strings"
	"testing"

	"repro/internal/layout"
	"repro/internal/webservice"
)

// gamerQueenApp builds the paper's §II-B running example through the
// Designer API: Ann's inventory as primary content, game reviews from
// site-restricted web search as supplemental, and a pricing service.
func gamerQueenApp(t testing.TB) *Application {
	t.Helper()
	d := NewDesigner("gamerqueen", "GamerQueen", "ann", "gamerqueen")
	d.DropPrimary(SourceConfig{
		ID:      "inventory",
		Kind:    KindProprietary,
		Dataset: "inventory",
	})
	d.SetSearchFields("inventory", "title", "producer", "description")
	d.UseTemplate("inventory", "media-card", map[string]string{
		"title": "title", "url": "detailurl", "image": "image", "description": "description",
	})
	d.DropSupplemental("inventory", SourceConfig{
		ID:         "reviews",
		Kind:       KindWebSearch,
		MaxResults: 3,
	})
	d.RestrictSites("reviews", "gamespot.com", "ign.com", "teamxbox.com")
	d.SetDriveFields("reviews", "{title} review", "title")
	d.UseTemplate("reviews", "headline-snippet", map[string]string{
		"title": "title", "url": "url", "snippet": "snippet",
	})
	d.DropSupplemental("inventory", SourceConfig{
		ID:   "pricing",
		Kind: KindService,
	})
	d.ConfigureService("pricing", webservice.Definition{
		Name:     "pricing",
		Endpoint: "http://pricing.example/price",
		Params:   map[string]string{"title": "{title}"},
	})
	d.SetDriveFields("pricing", "", "title")
	d.SetResultLayout("pricing", &layout.Element{
		Type: layout.ElemContainer,
		Children: []*layout.Element{
			{Type: layout.ElemText, Field: "price"},
			{Type: layout.ElemText, Field: "instock"},
		},
	})
	a, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDesignerBuildsGamerQueen(t *testing.T) {
	a := gamerQueenApp(t)
	if len(a.Primary) != 1 || len(a.Supplemental) != 2 {
		t.Fatalf("sources = %d primary, %d supplemental", len(a.Primary), len(a.Supplemental))
	}
	inv := a.Primary[0]
	if len(inv.SearchFields) != 3 {
		t.Errorf("search fields = %v", inv.SearchFields)
	}
	slots := inv.Layout.SourceSlots()
	if len(slots) != 2 || slots[0] != "reviews" || slots[1] != "pricing" {
		t.Fatalf("slots = %v", slots)
	}
	rev, ok := a.Source("reviews")
	if !ok || rev.QueryTemplate != "{title} review" || len(rev.Sites) != 3 {
		t.Fatalf("reviews config = %+v", rev)
	}
	if a.Theme == "" {
		t.Error("template use not recorded as theme")
	}
}

func TestUseTemplatePreservesSlots(t *testing.T) {
	a := gamerQueenApp(t)
	// UseTemplate was called before DropSupplemental for inventory; in
	// the other order slots must survive. Build a fresh app that
	// re-applies a template after attaching supplementals.
	d := NewDesigner("x", "X", "o", "t")
	d.DropPrimary(SourceConfig{ID: "p", Kind: KindProprietary, Dataset: "d"})
	d.DropSupplemental("p", SourceConfig{ID: "s", Kind: KindWebSearch, QueryTemplate: "{title}"})
	d.UseTemplate("p", "title-link", map[string]string{"title": "title", "url": "url"})
	app, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Primary[0].Layout.SourceSlots(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("slots after re-template = %v", got)
	}
	_ = a
}

func TestValidateCatchesProblems(t *testing.T) {
	base := func() *Application { return gamerQueenApp(t) }

	a := base()
	a.ID = ""
	if a.Validate() == nil {
		t.Error("missing ID accepted")
	}

	a = base()
	a.Primary = nil
	if a.Validate() == nil {
		t.Error("no primary accepted")
	}

	a = base()
	a.Primary[0].Dataset = ""
	if a.Validate() == nil {
		t.Error("dataset-less proprietary source accepted")
	}

	a = base()
	a.Supplemental[0].DriveFields = nil
	a.Supplemental[0].QueryTemplate = ""
	if a.Validate() == nil {
		t.Error("driverless supplemental accepted")
	}

	a = base()
	a.Primary[0].Layout.Append(&layout.Element{Type: layout.ElemSourceSlot, SourceID: "ghost"})
	if a.Validate() == nil {
		t.Error("dangling slot accepted")
	}

	a = base()
	a.Supplemental = append(a.Supplemental, SourceConfig{ID: "orphan", Kind: KindWebSearch, QueryTemplate: "{title}"})
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "orphan") {
		t.Errorf("orphan supplemental accepted: %v", err)
	}

	a = base()
	a.Supplemental[0].ID = a.Primary[0].ID
	if a.Validate() == nil {
		t.Error("duplicate source id accepted")
	}

	a = base()
	a.Supplemental[0].Layout = &layout.Element{
		Type:     layout.ElemContainer,
		Children: []*layout.Element{{Type: layout.ElemSourceSlot, SourceID: "pricing"}},
	}
	if a.Validate() == nil {
		t.Error("nested source slot accepted")
	}
}

func TestValidateServiceSource(t *testing.T) {
	d := NewDesigner("x", "X", "o", "t")
	d.DropPrimary(SourceConfig{ID: "p", Kind: KindService})
	if _, err := d.Build(); err == nil {
		t.Error("service source without endpoint accepted")
	}
}

func TestValidateAppComposition(t *testing.T) {
	d := NewDesigner("x", "X", "o", "t")
	d.DropPrimary(SourceConfig{ID: "p", Kind: KindApp})
	if _, err := d.Build(); err == nil {
		t.Error("app source without appId accepted")
	}
	d2 := NewDesigner("x", "X", "o", "t")
	d2.DropPrimary(SourceConfig{ID: "p", Kind: KindApp, AppID: "other"})
	if _, err := d2.Build(); err != nil {
		t.Errorf("valid app composition rejected: %v", err)
	}
}

func TestDesignerErrorsAccumulate(t *testing.T) {
	d := NewDesigner("x", "X", "o", "t")
	d.SetSearchFields("missing", "f")
	d.RestrictSites("missing", "a.com")
	d.DropSupplemental("missing", SourceConfig{ID: "s", Kind: KindWebSearch})
	if len(d.Errors()) != 3 {
		t.Fatalf("errors = %d", len(d.Errors()))
	}
	if _, err := d.Build(); err == nil {
		t.Fatal("build succeeded despite errors")
	}
}

func TestDesignerUnknownTemplate(t *testing.T) {
	d := NewDesigner("x", "X", "o", "t")
	d.DropPrimary(SourceConfig{ID: "p", Kind: KindProprietary, Dataset: "d"})
	d.UseTemplate("p", "nope", nil)
	if _, err := d.Build(); err == nil {
		t.Fatal("unknown template accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := gamerQueenApp(t)
	data, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped app invalid: %v", err)
	}
	if back.ID != a.ID || len(back.Supplemental) != len(a.Supplemental) {
		t.Error("round trip lost configuration")
	}
	rev, ok := back.Source("reviews")
	if !ok || rev.QueryTemplate != "{title} review" {
		t.Error("supplemental config lost in round trip")
	}
	if _, err := Unmarshal([]byte("{bad")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestSourceLookup(t *testing.T) {
	a := gamerQueenApp(t)
	if _, ok := a.Source("inventory"); !ok {
		t.Error("primary not found")
	}
	if _, ok := a.Source("pricing"); !ok {
		t.Error("supplemental not found")
	}
	if _, ok := a.Source("ghost"); ok {
		t.Error("phantom source found")
	}
}
