// Package app holds the application model: the configuration a
// designer builds through the paper's WYSIWYG interface (Fig 1) and
// that the runtime executes (Fig 2). The model is pure data —
// serializable to JSON — so applications can be saved, published and
// hosted; the Designer type in this package provides the no-code
// operations the drag-n-drop GUI would invoke.
package app

import (
	"encoding/json"
	"fmt"

	"repro/internal/layout"
	"repro/internal/store"
	"repro/internal/webservice"
)

// SourceKind enumerates configurable source types.
type SourceKind string

// The source palette from Fig 1's left bar: the designer's own
// proprietary datasets, the four engine services, ads, and SOAP/REST
// web services. KindApp composes another application as a source
// (future work §IV).
const (
	KindProprietary SourceKind = "proprietary"
	KindWebSearch   SourceKind = "websearch"
	KindImageSearch SourceKind = "imagesearch"
	KindVideoSearch SourceKind = "videosearch"
	KindNewsSearch  SourceKind = "newssearch"
	KindAds         SourceKind = "ads"
	KindService     SourceKind = "service"
	KindApp         SourceKind = "app"
)

// SourceConfig configures one data source dropped onto the
// application.
type SourceConfig struct {
	ID   string     `json:"id"`
	Kind SourceKind `json:"kind"`

	// MaxResults is "how many results to be shown" per Fig 1.
	MaxResults int `json:"maxResults,omitempty"`

	// Proprietary sources:
	Dataset      string         `json:"dataset,omitempty"`
	SearchFields []string       `json:"searchFields,omitempty"`
	Filters      []store.Filter `json:"filters,omitempty"`
	OrderBy      string         `json:"orderBy,omitempty"`

	// Engine sources:
	Sites      []string `json:"sites,omitempty"`
	AddTerms   []string `json:"addTerms,omitempty"`
	PreferURLs []string `json:"preferUrls,omitempty"`

	// Web services:
	Service webservice.Definition `json:"service,omitempty"`

	// App composition:
	AppID string `json:"appId,omitempty"`

	// Supplemental binding: which fields of the primary result drive
	// this source ("The designer selects which fields from the first
	// data source to use when querying that secondary data"), and the
	// query template built from them, e.g. "{title} review".
	DriveFields   []string `json:"driveFields,omitempty"`
	QueryTemplate string   `json:"queryTemplate,omitempty"`

	// Layout renders this source's results (one tree per item).
	Layout *layout.Element `json:"layout,omitempty"`
}

// Application is a complete search-driven application.
type Application struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Owner string `json:"owner"`
	// Tenant is the proprietary-data space the app reads.
	Tenant string `json:"tenant"`

	// Primary sources answer the end user's query directly.
	Primary []SourceConfig `json:"primary"`
	// Supplemental sources are driven by fields of primary results;
	// they appear in a primary layout's source slots.
	Supplemental []SourceConfig `json:"supplemental,omitempty"`

	// Stylesheet gives web-savvy designers full styling control.
	Stylesheet *layout.Stylesheet `json:"stylesheet,omitempty"`
	// Theme names a wizard preset recorded for provenance.
	Theme string `json:"theme,omitempty"`

	// Published lists distribution targets ("web", "facebook").
	Published []string `json:"published,omitempty"`
}

// Validate checks the configuration for the errors the design GUI
// would surface before publishing.
func (a *Application) Validate() error {
	if a.ID == "" {
		return fmt.Errorf("app: missing ID")
	}
	if a.Name == "" {
		return fmt.Errorf("app %s: missing name", a.ID)
	}
	if a.Owner == "" {
		return fmt.Errorf("app %s: missing owner", a.ID)
	}
	if len(a.Primary) == 0 {
		return fmt.Errorf("app %s: no primary source", a.ID)
	}
	ids := map[string]bool{}
	supplemental := map[string]*SourceConfig{}
	for i := range a.Supplemental {
		sc := &a.Supplemental[i]
		if err := a.validateSource(sc, false); err != nil {
			return err
		}
		if ids[sc.ID] {
			return fmt.Errorf("app %s: duplicate source id %q", a.ID, sc.ID)
		}
		ids[sc.ID] = true
		supplemental[sc.ID] = sc
	}
	for i := range a.Primary {
		sc := &a.Primary[i]
		if err := a.validateSource(sc, true); err != nil {
			return err
		}
		if ids[sc.ID] {
			return fmt.Errorf("app %s: duplicate source id %q", a.ID, sc.ID)
		}
		ids[sc.ID] = true
		// Every source slot in a primary layout must name a known
		// supplemental source.
		if sc.Layout != nil {
			for _, slot := range sc.Layout.SourceSlots() {
				if supplemental[slot] == nil {
					return fmt.Errorf("app %s: source %s layout references unknown supplemental %q", a.ID, sc.ID, slot)
				}
			}
		}
	}
	// Supplemental sources must be reachable from some primary layout;
	// a dangling one is a designer mistake.
	for id := range supplemental {
		found := false
		for i := range a.Primary {
			if a.Primary[i].Layout == nil {
				continue
			}
			for _, slot := range a.Primary[i].Layout.SourceSlots() {
				if slot == id {
					found = true
				}
			}
		}
		if !found {
			return fmt.Errorf("app %s: supplemental source %q is not placed in any layout", a.ID, id)
		}
	}
	return nil
}

func (a *Application) validateSource(sc *SourceConfig, primary bool) error {
	if sc.ID == "" {
		return fmt.Errorf("app %s: source with empty id", a.ID)
	}
	switch sc.Kind {
	case KindProprietary:
		if sc.Dataset == "" {
			return fmt.Errorf("app %s: source %s: proprietary source needs a dataset", a.ID, sc.ID)
		}
	case KindWebSearch, KindImageSearch, KindVideoSearch, KindNewsSearch:
		// engine sources need nothing extra
	case KindAds:
		// ads need nothing extra
	case KindService:
		if sc.Service.Endpoint == "" {
			return fmt.Errorf("app %s: source %s: service source needs an endpoint", a.ID, sc.ID)
		}
	case KindApp:
		if sc.AppID == "" {
			return fmt.Errorf("app %s: source %s: app source needs an appId", a.ID, sc.ID)
		}
	default:
		return fmt.Errorf("app %s: source %s: unknown kind %q", a.ID, sc.ID, sc.Kind)
	}
	if !primary {
		if len(sc.DriveFields) == 0 && sc.QueryTemplate == "" && sc.Kind != KindService {
			return fmt.Errorf("app %s: supplemental source %s has no drive fields or query template", a.ID, sc.ID)
		}
	}
	if sc.Layout != nil {
		if err := sc.Layout.Validate(); err != nil {
			return fmt.Errorf("app %s: source %s: %w", a.ID, sc.ID, err)
		}
		if !primary && len(sc.Layout.SourceSlots()) > 0 {
			return fmt.Errorf("app %s: supplemental source %s cannot nest source slots", a.ID, sc.ID)
		}
	}
	return nil
}

// Source finds a source config by ID across primary and supplemental.
func (a *Application) Source(id string) (*SourceConfig, bool) {
	for i := range a.Primary {
		if a.Primary[i].ID == id {
			return &a.Primary[i], true
		}
	}
	for i := range a.Supplemental {
		if a.Supplemental[i].ID == id {
			return &a.Supplemental[i], true
		}
	}
	return nil, false
}

// MarshalJSON round-trip: applications persist as JSON configuration
// files (the paper's "configuration file for the application").
func Marshal(a *Application) ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// Unmarshal parses an application configuration.
func Unmarshal(data []byte) (*Application, error) {
	var a Application
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("app: %w", err)
	}
	return &a, nil
}
