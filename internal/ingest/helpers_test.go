package ingest

import "repro/internal/store"

// newUploaderStore builds a store with tenant "t" owned by "o" for
// property tests.
func newUploaderStore() *store.Store {
	s := store.New()
	if err := s.CreateTenant("t", "o"); err != nil {
		panic(err)
	}
	return s
}

// declaredSchema is a two-column schema with a numeric price used by
// the report-accounting property.
func declaredSchema() store.Schema {
	return store.Schema{
		Name: "d",
		Key:  "id",
		Fields: []store.Field{
			{Name: "id", Required: true},
			{Name: "price", Type: store.TypeNumber},
		},
	}
}
