package ingest

import (
	"encoding/csv"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: writing records as CSV and parsing them back yields the
// same records, including values with commas, quotes and newlines.
func TestPropertyCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := []string{"id", "title", "notes"}
		n := rng.Intn(20) + 1
		rows := make([][]string, n)
		alphabet := []string{"plain", "with,comma", `with"quote`, "with\nnewline", "tab\tvalue", "ünïcode"}
		for i := range rows {
			rows[i] = []string{
				fmt.Sprintf("r%d", i),
				alphabet[rng.Intn(len(alphabet))],
				alphabet[rng.Intn(len(alphabet))],
			}
		}
		var buf strings.Builder
		w := csv.NewWriter(&buf)
		w.Write(cols)
		w.WriteAll(rows)
		w.Flush()

		recs, err := Parse(FormatCSV, strings.NewReader(buf.String()))
		if err != nil || len(recs) != n {
			return false
		}
		for i, row := range rows {
			for c, col := range cols {
				// Parse trims surrounding whitespace; compare trimmed.
				if recs[i][col] != strings.TrimSpace(row[c]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: XML item documents round-trip through parseXML.
func TestPropertyXMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 1
		var b strings.Builder
		b.WriteString("<items>")
		want := make([]map[string]string, n)
		for i := 0; i < n; i++ {
			v := fmt.Sprintf("value&amp;%d", i)
			b.WriteString("<item><id>")
			fmt.Fprintf(&b, "id%d", i)
			b.WriteString("</id><val>")
			b.WriteString(v)
			b.WriteString("</val></item>")
			want[i] = map[string]string{"id": fmt.Sprintf("id%d", i), "val": fmt.Sprintf("value&%d", i)}
		}
		b.WriteString("</items>")
		recs, err := Parse(FormatXML, strings.NewReader(b.String()))
		if err != nil || len(recs) != n {
			return false
		}
		for i := range recs {
			if recs[i]["id"] != want[i]["id"] || recs[i]["val"] != want[i]["val"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: every upload report satisfies Received = Loaded +
// len(Rejected).
func TestPropertyReportAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		b.WriteString("id,price\n")
		n := rng.Intn(30) + 1
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&b, "r%d,not-a-number\n", i)
			} else {
				fmt.Fprintf(&b, "r%d,%d\n", i, rng.Intn(100))
			}
		}
		st := newUploaderStore()
		up := &Uploader{Store: st}
		// Declared schema forces price to be numeric so bad rows are
		// rejected rather than inferred as strings.
		rep, err := up.Upload(Options{
			Tenant: "t", Actor: "o", Dataset: "d", Format: FormatCSV,
			Schema: declaredSchema(),
		}, strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		return rep.Received == n && rep.Loaded+len(rep.Rejected) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
