package ingest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
)

const csvSample = `sku,title,price,instock
G1,The Legend of Zelda,49.99,true
G2,Halo Wars,39.99,true
G3,"Gears, of War",19.99,false
`

const xmlSample = `<inventory>
  <game><sku>G1</sku><title>Zelda</title><price>49.99</price></game>
  <game><sku>G2</sku><title>Halo</title><price>39.99</price></game>
</inventory>`

const rssSample = `<?xml version="1.0"?>
<rss version="2.0"><channel><title>Game News</title>
<item><title>Zelda announced</title><link>http://news.example/zelda</link><description>New zelda game</description><pubDate>Mon, 01 Mar 2010</pubDate><guid>n1</guid><category>games</category></item>
<item><title>Halo patch</title><link>http://news.example/halo</link><description>Patch notes</description></item>
</channel></rss>`

const xlsSample = "=XLSGRID\nsku\ttitle\tprice\nG1\tZelda\t49.99\nG2\tHalo\t39.99\n"

func TestDetectFormat(t *testing.T) {
	cases := map[string]Format{
		"inventory.csv": FormatCSV,
		"data.TXT":      FormatCSV,
		"data.tsv":      FormatTSV,
		"feed.rss":      FormatRSS,
		"doc.xml":       FormatXML,
		"sheet.xls":     FormatXLS,
		"sheet.xlsx":    FormatXLS,
	}
	for name, want := range cases {
		got, err := DetectFormat(name)
		if err != nil || got != want {
			t.Errorf("DetectFormat(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := DetectFormat("archive.zip"); err == nil {
		t.Error("unknown extension accepted")
	}
}

func TestParseCSV(t *testing.T) {
	recs, err := Parse(FormatCSV, strings.NewReader(csvSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0]["title"] != "The Legend of Zelda" || recs[0]["price"] != "49.99" {
		t.Errorf("rec0 = %v", recs[0])
	}
	if recs[2]["title"] != "Gears, of War" {
		t.Errorf("quoted comma mishandled: %v", recs[2])
	}
}

func TestParseCSVErrors(t *testing.T) {
	if _, err := Parse(FormatCSV, strings.NewReader("")); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := Parse(FormatCSV, strings.NewReader("a,,c\n1,2,3\n")); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := Parse(FormatCSV, strings.NewReader("a,b\n1,2,3,4\n")); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestParseTSV(t *testing.T) {
	recs, err := Parse(FormatTSV, strings.NewReader("sku\ttitle\nG1\tZelda\n"))
	if err != nil || len(recs) != 1 || recs[0]["title"] != "Zelda" {
		t.Fatalf("tsv = %v, %v", recs, err)
	}
}

func TestParseXML(t *testing.T) {
	recs, err := Parse(FormatXML, strings.NewReader(xmlSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0]["sku"] != "G1" || recs[1]["title"] != "Halo" {
		t.Fatalf("xml = %v", recs)
	}
}

func TestParseXMLMalformed(t *testing.T) {
	if _, err := Parse(FormatXML, strings.NewReader("<a><b></a>")); err == nil {
		t.Error("malformed xml accepted")
	}
}

func TestParseRSS(t *testing.T) {
	recs, err := Parse(FormatRSS, strings.NewReader(rssSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("rss items = %d", len(recs))
	}
	if recs[0]["title"] != "Zelda announced" || recs[0]["category"] != "games" {
		t.Errorf("rss rec0 = %v", recs[0])
	}
	if _, ok := recs[1]["guid"]; ok {
		t.Error("absent guid materialized")
	}
}

func TestParseRSSEmpty(t *testing.T) {
	empty := `<rss><channel><title>x</title></channel></rss>`
	if _, err := Parse(FormatRSS, strings.NewReader(empty)); err == nil {
		t.Error("empty feed accepted")
	}
}

func TestParseXLSGrid(t *testing.T) {
	recs, err := Parse(FormatXLS, strings.NewReader(xlsSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0]["title"] != "Zelda" {
		t.Fatalf("xls = %v", recs)
	}
	// without marker line
	recs, err = Parse(FormatXLS, strings.NewReader("a\tb\n1\t2\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("plain grid = %v, %v", recs, err)
	}
}

func TestParseUnknownFormat(t *testing.T) {
	if _, err := Parse("parquet", strings.NewReader("x")); err == nil {
		t.Error("unknown format accepted")
	}
}

func newUploader(t *testing.T) (*Uploader, *store.Store) {
	t.Helper()
	s := store.New()
	if err := s.CreateTenant("shop", "ann"); err != nil {
		t.Fatal(err)
	}
	return &Uploader{Store: s}, s
}

func TestUploadCreatesDatasetWithInferredSchema(t *testing.T) {
	u, s := newUploader(t)
	rep, err := u.Upload(Options{Tenant: "shop", Actor: "ann", Dataset: "inventory", Format: FormatCSV, KeyField: "sku"}, strings.NewReader(csvSample))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CreatedDataset || rep.Loaded != 3 || rep.Received != 3 {
		t.Fatalf("report = %+v", rep)
	}
	ds, err := s.DatasetContext(context.Background(), "shop", "ann", "inventory", store.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 {
		t.Fatalf("dataset has %d records", ds.Len())
	}
	// schema inference: price should be numeric, title searchable
	f, _ := ds.Schema().Field("price")
	if f.Type != store.TypeNumber {
		t.Errorf("price type = %v", f.Type)
	}
	hits, err := ds.SearchContext(context.Background(), store.SearchRequest{Query: "zelda"})
	if err != nil || len(hits) != 1 {
		t.Fatalf("search after upload: %v, %v", hits, err)
	}
	// key field respected
	if _, ok := ds.Get("G1"); !ok {
		t.Error("key field not used for record identity")
	}
}

func TestUploadIntoExistingDataset(t *testing.T) {
	u, s := newUploader(t)
	sch := store.Schema{Name: "inventory", Key: "sku", Fields: []store.Field{
		{Name: "sku", Required: true},
		{Name: "title", Searchable: true},
		{Name: "price", Type: store.TypeNumber},
		{Name: "instock", Type: store.TypeBool},
	}}
	if _, err := s.CreateDataset("shop", "ann", sch); err != nil {
		t.Fatal(err)
	}
	rep, err := u.Upload(Options{Tenant: "shop", Actor: "ann", Dataset: "inventory", Format: FormatCSV}, strings.NewReader(csvSample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CreatedDataset {
		t.Error("re-created existing dataset")
	}
	if rep.Loaded != 3 {
		t.Errorf("loaded %d", rep.Loaded)
	}
}

func TestUploadRejectsInvalidRows(t *testing.T) {
	u, s := newUploader(t)
	sch := store.Schema{Name: "inv", Key: "sku", Fields: []store.Field{
		{Name: "sku", Required: true},
		{Name: "price", Type: store.TypeNumber},
	}}
	if _, err := s.CreateDataset("shop", "ann", sch); err != nil {
		t.Fatal(err)
	}
	bad := "sku,price\nA,10\nB,not-a-number\nC,30\n"
	rep, err := u.Upload(Options{Tenant: "shop", Actor: "ann", Dataset: "inv", Format: FormatCSV}, strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 2 || len(rep.Rejected) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if _, ok := rep.Rejected[1]; !ok {
		t.Error("wrong row rejected")
	}
}

func TestUploadAccessControl(t *testing.T) {
	u, _ := newUploader(t)
	_, err := u.Upload(Options{Tenant: "shop", Actor: "mallory", Dataset: "inv", Format: FormatCSV}, strings.NewReader(csvSample))
	if err == nil {
		t.Fatal("mallory uploaded into ann's space")
	}
}

func TestUploadURLAndFeedPolling(t *testing.T) {
	u, s := newUploader(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(rssSample))
	}))
	defer srv.Close()
	u.Client = srv.Client()

	sub := &FeedSubscription{
		Uploader: u,
		Opts:     Options{Tenant: "shop", Actor: "ann", Dataset: "news", KeyField: "link"},
		URL:      srv.URL + "/feed.rss",
	}
	rep, err := sub.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 2 {
		t.Fatalf("first poll loaded %d", rep.Loaded)
	}
	// Second poll upserts the same items (no duplicates by link key).
	if _, err := sub.Poll(); err != nil {
		t.Fatal(err)
	}
	ds, _ := s.DatasetContext(context.Background(), "shop", "ann", "news", store.PermRead)
	if ds.Len() != 2 {
		t.Fatalf("after re-poll dataset has %d records", ds.Len())
	}
	if sub.Polls() != 2 {
		t.Errorf("polls = %d", sub.Polls())
	}
}

func TestUploadURLHTTPError(t *testing.T) {
	u, _ := newUploader(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer srv.Close()
	u.Client = srv.Client()
	_, err := u.UploadURL(Options{Tenant: "shop", Actor: "ann", Dataset: "d"}, srv.URL+"/x.csv")
	if err == nil {
		t.Fatal("404 upload accepted")
	}
}

func TestUploadURLFormatDetection(t *testing.T) {
	u, s := newUploader(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(csvSample))
	}))
	defer srv.Close()
	u.Client = srv.Client()
	rep, err := u.UploadURL(Options{Tenant: "shop", Actor: "ann", Dataset: "inv"}, srv.URL+"/export.csv")
	if err != nil || rep.Loaded != 3 {
		t.Fatalf("url upload: %+v, %v", rep, err)
	}
	if _, err := u.UploadURL(Options{Tenant: "shop", Actor: "ann", Dataset: "x"}, srv.URL+"/export.bin"); err == nil {
		t.Error("undetectable format accepted")
	}
	_ = s
}
