package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/store"
	"repro/internal/wal"
)

// Uploader loads parsed uploads into a designer's dataset, creating
// the dataset with an inferred schema when it does not exist yet.
type Uploader struct {
	Store *store.Store
	// Client fetches remote sources (RSS feeds, HTTP uploads). Nil
	// means http.DefaultClient. Tests and the simulated transports
	// inject an httptest client here.
	Client *http.Client
}

// Report summarizes one upload.
type Report struct {
	Dataset  string
	Format   Format
	Received int
	Loaded   int
	// Rejected maps record ordinal (0-based within the upload) to the
	// validation error that rejected it.
	Rejected map[int]string
	// CreatedDataset is true when the upload created the dataset with
	// an inferred schema.
	CreatedDataset bool
}

// Options controls an upload.
type Options struct {
	Tenant  string
	Actor   string
	Dataset string
	Format  Format
	// Schema declares the dataset schema when creating it. Zero value
	// means infer from the uploaded records.
	Schema store.Schema
	// KeyField promotes a column to record key on inferred schemas.
	KeyField string
}

// Upload parses r and loads it.
func (u *Uploader) Upload(opts Options, r io.Reader) (*Report, error) {
	recs, err := Parse(opts.Format, r)
	if err != nil {
		return nil, err
	}
	return u.load(opts, recs)
}

// UploadURL fetches a remote document (HTTP/FTP-style upload or an
// RSS feed URL) and loads it. The format is detected from the URL
// path unless set in opts.
func (u *Uploader) UploadURL(opts Options, url string) (*Report, error) {
	if opts.Format == "" {
		f, err := DetectFormat(url)
		if err != nil {
			return nil, err
		}
		opts.Format = f
	}
	client := u.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("ingest: fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ingest: fetching %s: status %s", url, resp.Status)
	}
	return u.Upload(opts, resp.Body)
}

func (u *Uploader) load(opts Options, recs []store.Record) (*Report, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("ingest: upload contains no records")
	}
	rep := &Report{
		Dataset:  opts.Dataset,
		Format:   opts.Format,
		Received: len(recs),
		Rejected: make(map[int]string),
	}
	// Uploads are batch jobs without a request context; lookups run
	// uncancellable, as before the ctx-first migration.
	ds, err := u.Store.DatasetContext(context.Background(), opts.Tenant, opts.Actor, opts.Dataset, store.PermWrite)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrNoSuchDataset):
		schema := opts.Schema
		if schema.Name == "" {
			schema = store.InferSchema(opts.Dataset, recs)
			if opts.KeyField != "" {
				schema.Key = opts.KeyField
			}
		}
		schema.Name = opts.Dataset
		ds, err = u.Store.CreateDataset(opts.Tenant, opts.Actor, schema)
		if err != nil {
			return nil, err
		}
		rep.CreatedDataset = true
	default:
		return nil, err
	}
	// Fast path: one batched write. The whole upload is analyzed in
	// parallel and applied with one lock acquisition per index shard —
	// and, with a WAL attached, acknowledged by one group commit
	// instead of one fsync per record.
	if _, err := ds.AddBatchContext(context.Background(), recs); err == nil {
		rep.Loaded = len(recs)
		return rep, nil
	} else if isDurabilityErr(err) {
		// The log is failed (or the batch was cancelled): nothing useful
		// to attribute per record, and retrying record-by-record against
		// a sticky-failed log would only re-apply the batch in memory.
		return nil, err
	}
	// Slow path, taken only when the batch was rejected up front
	// (validation or quota — nothing was applied): retry one record at
	// a time so the report attributes each failure to its ordinal.
	for i, rec := range recs {
		if _, err := ds.Put(rec); err != nil {
			rep.Rejected[i] = err.Error()
			continue
		}
		rep.Loaded++
	}
	return rep, nil
}

// isDurabilityErr reports whether err means the write path itself is
// broken (failed log, cancellation) rather than the records invalid.
func isDurabilityErr(err error) bool {
	var we *wal.WriteError
	return errors.As(err, &we) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// FeedSubscription polls an RSS feed into a dataset, giving the
// "real-time data freshness" behaviour the paper describes for feed
// sources. Poll is driven manually (or by a caller's ticker) so tests
// stay deterministic.
type FeedSubscription struct {
	Uploader *Uploader
	Opts     Options
	URL      string

	lastPoll time.Time
	polls    int
}

// Poll fetches the feed once and upserts its items.
func (f *FeedSubscription) Poll() (*Report, error) {
	f.Opts.Format = FormatRSS
	rep, err := f.Uploader.UploadURL(f.Opts, f.URL)
	if err != nil {
		return nil, err
	}
	f.lastPoll = time.Now()
	f.polls++
	return rep, nil
}

// Polls reports how many successful polls have run.
func (f *FeedSubscription) Polls() int { return f.polls }
