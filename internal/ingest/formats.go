// Package ingest implements the upload side of the paper's
// "Proprietary Data" capability: parsing designer uploads in the
// formats §II-A enumerates — delimited files, Excel-like grids, XML,
// and RSS feeds — into store records, inferring a schema when none is
// declared, and managing upload sessions arriving over HTTP/FTP-style
// transports.
package ingest

import (
	"encoding/csv"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/store"
)

// Format identifies an upload format.
type Format string

// Supported formats, matching the paper's list ("delimited files,
// Excel files, and XML", plus RSS feeds).
const (
	FormatCSV Format = "csv"
	FormatTSV Format = "tsv"
	FormatXML Format = "xml"
	FormatRSS Format = "rss"
	FormatXLS Format = "xls" // Excel-like grid (see DESIGN.md substitution)
)

// DetectFormat guesses a format from a filename extension.
func DetectFormat(filename string) (Format, error) {
	lower := strings.ToLower(filename)
	switch {
	case strings.HasSuffix(lower, ".csv"), strings.HasSuffix(lower, ".txt"):
		return FormatCSV, nil
	case strings.HasSuffix(lower, ".tsv"), strings.HasSuffix(lower, ".tab"):
		return FormatTSV, nil
	case strings.HasSuffix(lower, ".xml"):
		return FormatXML, nil
	case strings.HasSuffix(lower, ".rss"):
		return FormatRSS, nil
	case strings.HasSuffix(lower, ".xls"), strings.HasSuffix(lower, ".xlsx"):
		return FormatXLS, nil
	}
	return "", fmt.Errorf("ingest: cannot detect format of %q", filename)
}

// Parse reads records in the given format. The first row of delimited
// and XLS inputs is the header.
func Parse(format Format, r io.Reader) ([]store.Record, error) {
	switch format {
	case FormatCSV:
		return parseDelimited(r, ',')
	case FormatTSV:
		return parseDelimited(r, '\t')
	case FormatXML:
		return parseXML(r)
	case FormatRSS:
		return ParseRSS(r)
	case FormatXLS:
		return parseXLSGrid(r)
	default:
		return nil, fmt.Errorf("ingest: unknown format %q", format)
	}
}

func parseDelimited(r io.Reader, sep rune) ([]store.Record, error) {
	cr := csv.NewReader(r)
	cr.Comma = sep
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("ingest: empty delimited file")
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: reading header: %w", err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
		if header[i] == "" {
			return nil, fmt.Errorf("ingest: empty column name at position %d", i)
		}
	}
	var out []store.Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		rec := make(store.Record, len(header))
		for i, col := range header {
			if i < len(row) {
				rec[col] = strings.TrimSpace(row[i])
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// parseXML accepts documents of the shape
//
//	<items><item><field>value</field>...</item>...</items>
//
// (any element names; the per-record element is the repeated child of
// the root, and its children become fields).
func parseXML(r io.Reader) ([]store.Record, error) {
	dec := xml.NewDecoder(r)
	var out []store.Record
	depth := 0
	var rec store.Record
	var field string
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ingest: xml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			switch depth {
			case 2:
				rec = make(store.Record)
			case 3:
				field = t.Name.Local
				text.Reset()
			}
		case xml.CharData:
			if depth == 3 {
				text.Write(t)
			}
		case xml.EndElement:
			switch depth {
			case 3:
				rec[field] = strings.TrimSpace(text.String())
			case 2:
				if len(rec) > 0 {
					out = append(out, rec)
				}
			}
			depth--
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("ingest: xml: unbalanced document")
	}
	return out, nil
}

// parseXLSGrid parses the Excel-substitute grid format: the cells of
// each row are separated by tabs, rows by newlines, and the file may
// begin with an optional "=XLSGRID" marker line. This preserves the
// ingestion code path for spreadsheet uploads without a binary .xls
// reader (see DESIGN.md).
func parseXLSGrid(r io.Reader) ([]store.Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ingest: xls: %w", err)
	}
	content := string(data)
	if strings.HasPrefix(content, "=XLSGRID\n") {
		content = strings.TrimPrefix(content, "=XLSGRID\n")
	}
	return parseDelimited(strings.NewReader(content), '\t')
}

// rssDoc mirrors the RSS 2.0 structure we consume.
type rssDoc struct {
	Channel struct {
		Title string    `xml:"title"`
		Items []rssItem `xml:"item"`
	} `xml:"channel"`
}

type rssItem struct {
	Title       string `xml:"title"`
	Link        string `xml:"link"`
	Description string `xml:"description"`
	PubDate     string `xml:"pubDate"`
	GUID        string `xml:"guid"`
	Category    string `xml:"category"`
}

// ParseRSS converts an RSS 2.0 feed into records with fields title,
// link, description, pubdate, guid, category.
func ParseRSS(r io.Reader) ([]store.Record, error) {
	var doc rssDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("ingest: rss: %w", err)
	}
	if len(doc.Channel.Items) == 0 {
		return nil, fmt.Errorf("ingest: rss feed has no items")
	}
	out := make([]store.Record, 0, len(doc.Channel.Items))
	for _, it := range doc.Channel.Items {
		rec := store.Record{
			"title":       strings.TrimSpace(it.Title),
			"link":        strings.TrimSpace(it.Link),
			"description": strings.TrimSpace(it.Description),
		}
		if it.PubDate != "" {
			rec["pubdate"] = strings.TrimSpace(it.PubDate)
		}
		if it.GUID != "" {
			rec["guid"] = strings.TrimSpace(it.GUID)
		}
		if it.Category != "" {
			rec["category"] = strings.TrimSpace(it.Category)
		}
		out = append(out, rec)
	}
	return out, nil
}
