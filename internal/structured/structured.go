// Package structured implements the paper's future-work item
// "supporting richer querying of structured data": a small query
// language end users can type into a search box that mixes free text
// with typed field predicates and sort directives, compiled onto the
// store's structured search.
//
// Syntax (whitespace-separated clauses):
//
//	price:<30            numeric / string comparison (=,!=,<,<=,>,>=)
//	producer:"Big Co"    quoted values may contain spaces
//	instock:true         bare equality
//	sort:price  sort:-price
//	zelda adventure      everything else is free text
package structured

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/store"
)

// Parsed is the compiled form of a structured query.
type Parsed struct {
	FreeText string
	Filters  []store.Filter
	OrderBy  string
}

// Parse compiles the query text. It never fails on free text; it
// fails on malformed field clauses so the designer UI can explain.
func Parse(query string) (Parsed, error) {
	var p Parsed
	var free []string
	for _, tok := range splitClauses(query) {
		colon := strings.IndexByte(tok, ':')
		if colon <= 0 || colon == len(tok)-1 {
			free = append(free, tok)
			continue
		}
		field, rest := tok[:colon], tok[colon+1:]
		if field == "sort" {
			p.OrderBy = unquote(rest)
			continue
		}
		op, value := splitOp(rest)
		value = unquote(value)
		if value == "" {
			return Parsed{}, fmt.Errorf("structured: clause %q has empty value", tok)
		}
		p.Filters = append(p.Filters, store.Filter{Field: field, Op: op, Value: value})
	}
	p.FreeText = strings.Join(free, " ")
	return p, nil
}

// splitClauses splits on spaces but keeps quoted spans together
// (producer:"Big Co" stays one clause).
func splitClauses(s string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
			b.WriteRune(r)
		case r == ' ' && !inQuote:
			flush()
		default:
			b.WriteRune(r)
		}
	}
	flush()
	return out
}

func splitOp(s string) (op, value string) {
	switch {
	case strings.HasPrefix(s, "<="):
		return "<=", s[2:]
	case strings.HasPrefix(s, ">="):
		return ">=", s[2:]
	case strings.HasPrefix(s, "!="):
		return "!=", s[2:]
	case strings.HasPrefix(s, "<"):
		return "<", s[1:]
	case strings.HasPrefix(s, ">"):
		return ">", s[1:]
	case strings.HasPrefix(s, "~"):
		return "contains", s[1:]
	default:
		return "=", s
	}
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// Apply parses the query and runs it against a dataset. Unknown
// fields and malformed clauses surface as errors. Cancelling ctx
// aborts the underlying index evaluation.
func Apply(ctx context.Context, ds *store.Dataset, query string, limit int) ([]store.Hit, error) {
	p, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ds.SearchContext(ctx, store.SearchRequest{
		Query:   p.FreeText,
		Filters: p.Filters,
		OrderBy: p.OrderBy,
		Limit:   limit,
	})
}
