package structured

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/store"
)

func TestParseFreeTextOnly(t *testing.T) {
	p, err := Parse("zelda adventure game")
	if err != nil {
		t.Fatal(err)
	}
	if p.FreeText != "zelda adventure game" || len(p.Filters) != 0 || p.OrderBy != "" {
		t.Fatalf("parsed = %+v", p)
	}
}

func TestParseFilters(t *testing.T) {
	p, err := Parse(`zelda price:<30 producer:"Big Co" instock:true rating:>=4 sku:!=G1 desc:~cover sort:-price`)
	if err != nil {
		t.Fatal(err)
	}
	if p.FreeText != "zelda" {
		t.Errorf("free text = %q", p.FreeText)
	}
	want := []store.Filter{
		{Field: "price", Op: "<", Value: "30"},
		{Field: "producer", Op: "=", Value: "Big Co"},
		{Field: "instock", Op: "=", Value: "true"},
		{Field: "rating", Op: ">=", Value: "4"},
		{Field: "sku", Op: "!=", Value: "G1"},
		{Field: "desc", Op: "contains", Value: "cover"},
	}
	if !reflect.DeepEqual(p.Filters, want) {
		t.Fatalf("filters = %+v", p.Filters)
	}
	if p.OrderBy != "-price" {
		t.Errorf("order = %q", p.OrderBy)
	}
}

func TestParseQuotedSpacesStayTogether(t *testing.T) {
	p, err := Parse(`producer:"Two Words Here" other`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Filters) != 1 || p.Filters[0].Value != "Two Words Here" {
		t.Fatalf("filters = %+v", p.Filters)
	}
	if p.FreeText != "other" {
		t.Errorf("free = %q", p.FreeText)
	}
}

func TestParseEmptyValue(t *testing.T) {
	if _, err := Parse(`price:<`); err == nil {
		t.Fatal("empty comparison value accepted")
	}
}

func TestParseColonEdgeCases(t *testing.T) {
	// Leading/trailing colon tokens are treated as free text.
	p, err := Parse(":weird trailing:")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Filters) != 0 || p.FreeText != ":weird trailing:" {
		t.Fatalf("parsed = %+v", p)
	}
}

func invDataset(t testing.TB) *store.Dataset {
	t.Helper()
	s := store.New()
	s.CreateTenant("t", "o")
	ds, err := s.CreateDataset("t", "o", store.Schema{
		Name: "inv", Key: "sku",
		Fields: []store.Field{
			{Name: "sku", Required: true},
			{Name: "title", Searchable: true},
			{Name: "producer"},
			{Name: "price", Type: store.TypeNumber},
			{Name: "instock", Type: store.TypeBool},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []store.Record{
		{"sku": "G1", "title": "Zelda Legend", "producer": "Nintendo", "price": "49.99", "instock": "true"},
		{"sku": "G2", "title": "Zelda Tracks", "producer": "Nintendo", "price": "29.99", "instock": "false"},
		{"sku": "G3", "title": "Halo Wars", "producer": "Ensemble", "price": "19.99", "instock": "true"},
	}
	for _, r := range rows {
		if _, err := ds.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestApplyCombinesTextAndFilters(t *testing.T) {
	ds := invDataset(t)
	hits, err := Apply(context.Background(), ds, "zelda price:<40", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != "G2" {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestApplySortDirective(t *testing.T) {
	ds := invDataset(t)
	hits, err := Apply(context.Background(), ds, "sort:-price", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 || hits[0].ID != "G1" || hits[2].ID != "G3" {
		t.Fatalf("sorted = %v %v %v", hits[0].ID, hits[1].ID, hits[2].ID)
	}
}

func TestApplyBoolFilter(t *testing.T) {
	ds := invDataset(t)
	hits, err := Apply(context.Background(), ds, "instock:true", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("instock hits = %d", len(hits))
	}
}

func TestApplyUnknownFieldFails(t *testing.T) {
	ds := invDataset(t)
	if _, err := Apply(context.Background(), ds, "nope:<3", 10); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestApplyLimit(t *testing.T) {
	ds := invDataset(t)
	hits, err := Apply(context.Background(), ds, "producer:Nintendo", 1)
	if err != nil || len(hits) != 1 {
		t.Fatalf("limit: %v %v", hits, err)
	}
}
