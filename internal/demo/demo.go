// Package demo builds the paper's motivating applications on a
// Platform: GamerQueen (§II-B, the running example), WineFinder (§I's
// wine connoisseur vertical) and VideoStore (§I's video store).
// Commands, examples and benchmarks share these scenarios so every
// artifact exercises the same code paths.
package demo

import (
	"fmt"
	"net/http/httptest"
	"strings"

	"repro/internal/ads"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/layout"
	"repro/internal/publish"
	"repro/internal/webcorpus"
	"repro/internal/webservice"
)

// Scenario bundles what a built demo application exposes.
type Scenario struct {
	App *app.Application
	// Titles are the catalog titles (all corpus entities, so engine
	// supplementals return on-topic results).
	Titles []string
	// Pricing is the simulated in-house service (GamerQueen only).
	Pricing *webservice.PricingService
	// PricingServer must be closed by the caller when non-nil.
	PricingServer *httptest.Server
}

// Close releases scenario resources.
func (s *Scenario) Close() {
	if s.PricingServer != nil {
		s.PricingServer.Close()
	}
}

// GamerQueen builds Ann's video game store per §II-B: inventory
// primary, review web-search supplemental restricted to the paper's
// three sites, and a live pricing/in-stock service. nTitles bounds
// the inventory size (0 means 8).
func GamerQueen(p *core.Platform, seed int64, nTitles int) (*Scenario, error) {
	if nTitles <= 0 {
		nTitles = 8
	}
	if err := p.RegisterDesigner("ann", "gamerqueen"); err != nil {
		return nil, err
	}
	all := webcorpus.Entities(webcorpus.Config{Seed: seed}, webcorpus.TopicGames)
	if nTitles > len(all) {
		nTitles = len(all)
	}
	titles := all[:nTitles]

	var csv strings.Builder
	csv.WriteString("sku,title,producer,description,image,detailurl\n")
	for i, title := range titles {
		fmt.Fprintf(&csv, "G%d,%s,Studio%d,an exciting %s adventure for all players,http://img.example/g%d.png,http://gamerqueen.example/games/%d\n",
			i, title, i%4, title, i, i)
	}
	if _, err := p.Upload(ingest.Options{
		Tenant: "gamerqueen", Actor: "ann", Dataset: "inventory",
		Format: ingest.FormatCSV, KeyField: "sku",
	}, strings.NewReader(csv.String())); err != nil {
		return nil, err
	}

	pricing := webservice.NewPricingService(seed, titles)
	srv := httptest.NewServer(pricing)

	// A game retailer advertises against Ann's catalog keywords.
	if err := p.Ads.Register(ads.Ad{
		ID: "gamemart-1", Advertiser: "GameMart",
		Title: "GameMart deals", Text: "New and used games shipped free",
		LandingURL: "http://gamemart.example/deals",
		Keywords:   titles, BidCPC: 0.40,
	}); err != nil {
		return nil, err
	}

	d := p.NewApp("gamerqueen", "GamerQueen", "ann", "gamerqueen")
	d.DropPrimary(app.SourceConfig{ID: "inventory", Kind: app.KindProprietary, Dataset: "inventory", MaxResults: 5})
	d.SetSearchFields("inventory", "title", "producer", "description")
	d.UseTemplate("inventory", "media-card", map[string]string{
		"title": "title", "url": "detailurl", "image": "image", "description": "description",
	})
	d.DropSupplemental("inventory", app.SourceConfig{ID: "reviews", Kind: app.KindWebSearch, MaxResults: 3})
	d.RestrictSites("reviews", "gamespot.com", "ign.com", "teamxbox.com")
	d.SetDriveFields("reviews", "{title} review", "title")
	d.UseTemplate("reviews", "headline-snippet", map[string]string{"title": "title", "url": "url", "snippet": "snippet"})
	d.DropSupplemental("inventory", app.SourceConfig{ID: "pricing", Kind: app.KindService, MaxResults: 1})
	d.ConfigureService("pricing", webservice.Definition{
		Name: "pricing", Endpoint: srv.URL + "/price",
		Params:     map[string]string{"title": "{title}"},
		CacheTTLMS: 2000,
	})
	d.SetDriveFields("pricing", "", "title")
	d.SetResultLayout("pricing", &layout.Element{Type: layout.ElemContainer, Children: []*layout.Element{
		{Type: layout.ElemText, Literal: "Price: "},
		{Type: layout.ElemText, Field: "price"},
		{Type: layout.ElemText, Literal: " In stock: "},
		{Type: layout.ElemText, Field: "instock"},
	}})
	d.DropSupplemental("inventory", app.SourceConfig{ID: "sponsored", Kind: app.KindAds, MaxResults: 1})
	d.SetDriveFields("sponsored", "{title}", "title")
	d.UseTemplate("sponsored", "ad-block", map[string]string{"title": "title", "url": "url", "text": "text"})

	a, err := d.Build()
	if err != nil {
		srv.Close()
		return nil, err
	}
	if _, err := p.Publish(a, publish.TargetWeb, publish.TargetFacebook); err != nil {
		srv.Close()
		return nil, err
	}
	return &Scenario{App: a, Titles: titles, Pricing: pricing, PricingServer: srv}, nil
}

// WineFinder builds the §I wine connoisseur's vertical: her curated
// cellar notes as primary content, wine-site web search supplemental,
// and sponsored listings for monetization.
func WineFinder(p *core.Platform, seed int64, nWines int) (*Scenario, error) {
	if nWines <= 0 {
		nWines = 10
	}
	if err := p.RegisterDesigner("claire", "winefinder"); err != nil {
		return nil, err
	}
	all := webcorpus.Entities(webcorpus.Config{Seed: seed}, webcorpus.TopicWine)
	if nWines > len(all) {
		nWines = len(all)
	}
	wines := all[:nWines]

	var grid strings.Builder
	grid.WriteString("=XLSGRID\nname\tregion\tvintage\trating\tnotes\n")
	regions := []string{"Napa", "Sonoma", "Bordeaux", "Rioja"}
	for i, wine := range wines {
		fmt.Fprintf(&grid, "%s\t%s\t%d\t%d\t%s shows ripe fruit and firm tannins\n",
			wine, regions[i%len(regions)], 1995+i%15, 84+i%16, wine)
	}
	if _, err := p.Upload(ingest.Options{
		Tenant: "winefinder", Actor: "claire", Dataset: "cellar",
		Format: ingest.FormatXLS, KeyField: "name",
	}, strings.NewReader(grid.String())); err != nil {
		return nil, err
	}

	if err := p.Ads.Register(ads.Ad{
		ID: "wineclub-1", Advertiser: "WineClub",
		Title: "Join the Wine Club", Text: "Monthly picks from small estates",
		LandingURL: "http://wineclub.example/join",
		Keywords:   wines, BidCPC: 0.80,
	}); err != nil {
		return nil, err
	}

	d := p.NewApp("winefinder", "WineFinder", "claire", "winefinder")
	d.DropPrimary(app.SourceConfig{ID: "cellar", Kind: app.KindProprietary, Dataset: "cellar", MaxResults: 5})
	d.SetSearchFields("cellar", "name", "notes")
	d.SetResultLayout("cellar", &layout.Element{Type: layout.ElemContainer, Children: []*layout.Element{
		{Type: layout.ElemText, Field: "name", Style: map[string]string{"font-size": "15px"}},
		{Type: layout.ElemText, Field: "region"},
		{Type: layout.ElemText, Field: "rating"},
		{Type: layout.ElemText, Field: "notes"},
	}})
	d.DropSupplemental("cellar", app.SourceConfig{ID: "web", Kind: app.KindWebSearch, MaxResults: 3})
	d.RestrictSites("web", webcorpus.SitesForTopic(webcorpus.TopicWine)...)
	d.SetDriveFields("web", "{name} review", "name")
	d.UseTemplate("web", "headline-snippet", map[string]string{"title": "title", "url": "url", "snippet": "snippet"})
	d.DropSupplemental("cellar", app.SourceConfig{ID: "sponsored", Kind: app.KindAds, MaxResults: 1})
	d.SetDriveFields("sponsored", "{name}", "name")
	d.UseTemplate("sponsored", "ad-block", map[string]string{"title": "title", "url": "url", "text": "text"})

	a, err := d.Build()
	if err != nil {
		return nil, err
	}
	if _, err := p.Publish(a, publish.TargetWeb); err != nil {
		return nil, err
	}
	return &Scenario{App: a, Titles: wines}, nil
}

// VideoStore builds §I's video store: movie inventory primary with
// trailer (video vertical) and latest-news supplementals.
func VideoStore(p *core.Platform, seed int64, nMovies int) (*Scenario, error) {
	if nMovies <= 0 {
		nMovies = 10
	}
	if err := p.RegisterDesigner("victor", "videostore"); err != nil {
		return nil, err
	}
	all := webcorpus.Entities(webcorpus.Config{Seed: seed}, webcorpus.TopicMovies)
	if nMovies > len(all) {
		nMovies = len(all)
	}
	movies := all[:nMovies]

	var xml strings.Builder
	xml.WriteString("<catalog>\n")
	for i, m := range movies {
		fmt.Fprintf(&xml, "<movie><id>M%d</id><title>%s</title><genre>%s</genre><synopsis>%s follows an unlikely hero</synopsis><rentalurl>http://videostore.example/rent/%d</rentalurl></movie>\n",
			i, m, []string{"drama", "thriller", "comedy"}[i%3], m, i)
	}
	xml.WriteString("</catalog>")
	if _, err := p.Upload(ingest.Options{
		Tenant: "videostore", Actor: "victor", Dataset: "catalog",
		Format: ingest.FormatXML, KeyField: "id",
	}, strings.NewReader(xml.String())); err != nil {
		return nil, err
	}

	d := p.NewApp("videostore", "VideoStore", "victor", "videostore")
	d.DropPrimary(app.SourceConfig{ID: "catalog", Kind: app.KindProprietary, Dataset: "catalog", MaxResults: 4})
	d.SetSearchFields("catalog", "title", "synopsis")
	d.UseTemplate("catalog", "title-link", map[string]string{"title": "title", "url": "rentalurl"})
	d.DropSupplemental("catalog", app.SourceConfig{ID: "trailers", Kind: app.KindVideoSearch, MaxResults: 2})
	d.SetDriveFields("trailers", "{title} trailer", "title")
	d.UseTemplate("trailers", "headline-snippet", map[string]string{"title": "title", "url": "url", "snippet": "snippet"})
	d.DropSupplemental("catalog", app.SourceConfig{ID: "news", Kind: app.KindNewsSearch, MaxResults: 2})
	d.SetDriveFields("news", "{title} announcement", "title")
	d.UseTemplate("news", "headline-snippet", map[string]string{"title": "title", "url": "url", "snippet": "snippet"})

	a, err := d.Build()
	if err != nil {
		return nil, err
	}
	if _, err := p.Publish(a, publish.TargetWeb); err != nil {
		return nil, err
	}
	return &Scenario{App: a, Titles: movies}, nil
}

// SeedEngineClicks replays plausible end-user traffic into the engine
// click log so Site Suggest and recommendation demos have signal.
func SeedEngineClicks(p *core.Platform, topic webcorpus.Topic, queriesPerSite int) {
	sites := webcorpus.SitesForTopic(topic)
	entities := webcorpus.Entities(webcorpus.Config{Seed: 1}, topic)
	for qi := 0; qi < queriesPerSite; qi++ {
		q := entities[qi%len(entities)] + " review"
		for _, site := range sites {
			p.Engine.RecordClick(q, "http://"+site+"/page")
		}
	}
}
