package demo

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/webcorpus"
)

func TestGamerQueenScenario(t *testing.T) {
	p := core.New(core.Config{Seed: 1})
	sc, err := GamerQueen(p, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if len(sc.Titles) != 6 {
		t.Fatalf("titles = %d", len(sc.Titles))
	}
	if _, ok := p.Registry.Get("gamerqueen"); !ok {
		t.Fatal("app not published")
	}
	if got := p.Facebook.Installed(); len(got) != 1 {
		t.Fatalf("facebook installs = %v", got)
	}
	resp, err := p.Query(context.Background(), "gamerqueen", runtime.Query{Text: sc.Titles[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks) != 1 || len(resp.Blocks[0].Items) == 0 {
		t.Fatal("no results")
	}
	supp := resp.Blocks[0].SupplementalByItem[0]
	for _, want := range []string{"reviews", "pricing", "sponsored"} {
		if len(supp[want]) == 0 {
			t.Errorf("supplemental %s empty", want)
		}
	}
}

func TestWineFinderScenario(t *testing.T) {
	p := core.New(core.Config{Seed: 1})
	sc, err := WineFinder(p, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	resp, err := p.Query(context.Background(), "winefinder", runtime.Query{Text: sc.Titles[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks[0].Items) == 0 {
		t.Fatal("no cellar results")
	}
	if resp.Blocks[0].Items[0]["name"] != sc.Titles[0] {
		t.Errorf("top = %v", resp.Blocks[0].Items[0]["name"])
	}
}

func TestVideoStoreScenario(t *testing.T) {
	p := core.New(core.Config{Seed: 1})
	sc, err := VideoStore(p, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	resp, err := p.Query(context.Background(), "videostore", runtime.Query{Text: sc.Titles[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks[0].Items) == 0 {
		t.Fatal("no catalog results")
	}
	supp := resp.Blocks[0].SupplementalByItem[0]
	if len(supp["trailers"]) == 0 && len(supp["news"]) == 0 {
		t.Error("no media supplementals for a corpus entity")
	}
}

func TestScenariosCoexist(t *testing.T) {
	p := core.New(core.Config{Seed: 1})
	gq, err := GamerQueen(p, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer gq.Close()
	if _, err := WineFinder(p, 1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := VideoStore(p, 1, 4); err != nil {
		t.Fatal(err)
	}
	if got := p.Registry.List(); len(got) != 3 {
		t.Fatalf("apps = %v", got)
	}
}

func TestSeedEngineClicks(t *testing.T) {
	p := core.New(core.Config{Seed: 1})
	SeedEngineClicks(p, webcorpus.TopicGames, 3)
	log := p.Engine.Log()
	if len(log) == 0 {
		t.Fatal("no clicks seeded")
	}
	sugs := p.SiteSuggest([]string{"ign.com"}, 3)
	if len(sugs) == 0 {
		t.Fatal("seeded clicks produced no suggestions")
	}
}
