package jsonw

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// marshal is the reference encoder the writer must match byte for byte.
func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal(%v): %v", v, err)
	}
	return string(b)
}

func TestStringParityTable(t *testing.T) {
	cases := []string{
		"",
		"plain ascii",
		`quotes " and \ backslash`,
		"newline\n tab\t carriage\r",
		"control \x00 \x01 \x1f \x7f bytes",
		"html <script>&amp;</script> escaping",
		"unicode: héllo wörld — em dash",
		"日本語のテキスト",
		"emoji 🔍🚀 pair",
		"line sep \u2028 and para sep \u2029",
		"invalid utf8: \xff\xfe raw",
		"truncated rune: \xe6\x97",
		"mixed \x02<&> \xffend",
		strings.Repeat("long safe text ", 100),
	}
	for _, s := range cases {
		w := Get()
		w.String(s)
		if got, want := string(w.Bytes()), marshal(t, s); got != want {
			t.Errorf("String(%q):\n got %s\nwant %s", s, got, want)
		}
		Put(w)
	}
}

func TestStringParityRandom(t *testing.T) {
	// Alphabet weighted toward the interesting cases: controls, the
	// HTML trio, multibyte runes, and raw bytes that break UTF-8.
	alphabet := []string{
		"a", "z", " ", `"`, `\`, "<", ">", "&", "\n", "\r", "\t",
		"\x00", "\x07", "\x1f", "\x7f", "é", "日", "🚀",
		"\u2028", "\u2029", "\xff", "\xc3", "\xe6\x97", "�",
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		var sb strings.Builder
		for n := rng.Intn(40); n > 0; n-- {
			sb.WriteString(alphabet[rng.Intn(len(alphabet))])
		}
		s := sb.String()
		w := Get()
		w.String(s)
		if got, want := string(w.Bytes()), marshal(t, s); got != want {
			t.Fatalf("String(%q):\n got %s\nwant %s", s, got, want)
		}
		Put(w)
	}
}

func TestFloatParityTable(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, -0.5, 3.14159, 1e-6, 9.999e-7, 1e-7, 1e-21,
		1e20, 1e21, 1e22, -1e21, 123456789.123456789, 0.1,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		2.2250738585072014e-308, 1.5e-9, 6.02e23,
	}
	for _, f := range cases {
		w := Get()
		w.Float(f)
		if got, want := string(w.Bytes()), marshal(t, f); got != want {
			t.Errorf("Float(%g): got %s want %s", f, got, want)
		}
		Put(w)
	}
}

func TestFloatParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var w Writer
	for i := 0; i < 5000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue // encoding/json errors on these; Float writes null
		}
		w.Reset()
		w.Float(f)
		if got, want := string(w.Bytes()), marshal(t, f); got != want {
			t.Fatalf("Float(%v): got %s want %s", f, got, want)
		}
	}
}

func TestFloatNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		var w Writer
		w.Float(f)
		if got := string(w.Bytes()); got != "null" {
			t.Errorf("Float(%v) = %s, want null", f, got)
		}
	}
}

func TestDocumentParity(t *testing.T) {
	type inner struct {
		N    int     `json:"n"`
		Frac float64 `json:"frac"`
	}
	type doc struct {
		Name  string   `json:"name"`
		OK    bool     `json:"ok"`
		Tags  []string `json:"tags"`
		Inner inner    `json:"inner"`
		Empty []int    `json:"empty"`
	}
	v := doc{
		Name:  "a <b> & \"c\"\nd",
		OK:    true,
		Tags:  []string{"x", "y z", ""},
		Inner: inner{N: -42, Frac: 0.25},
		Empty: nil,
	}
	w := Get()
	defer Put(w)
	w.BeginObject()
	w.Name("name")
	w.String(v.Name)
	w.Name("ok")
	w.Bool(v.OK)
	w.Name("tags")
	w.BeginArray()
	for _, tag := range v.Tags {
		w.String(tag)
	}
	w.EndArray()
	w.Name("inner")
	w.BeginObject()
	w.Name("n")
	w.Int(v.Inner.N)
	w.Name("frac")
	w.Float(v.Inner.Frac)
	w.EndObject()
	w.Name("empty")
	w.Null() // nil slice encodes as null
	w.EndObject()
	if got, want := string(w.Bytes()), marshal(t, v); got != want {
		t.Errorf("document:\n got %s\nwant %s", got, want)
	}
}

func TestEncoderNewlineParity(t *testing.T) {
	var ref bytes.Buffer
	if err := json.NewEncoder(&ref).Encode([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	var w Writer
	w.BeginArray()
	w.String("a")
	w.String("b")
	w.EndArray()
	w.Newline()
	if got, want := string(w.Bytes()), ref.String(); got != want {
		t.Errorf("encoder parity: got %q want %q", got, want)
	}
}

func TestEmptyContainers(t *testing.T) {
	var w Writer
	w.BeginObject()
	w.Name("a")
	w.BeginArray()
	w.EndArray()
	w.Name("b")
	w.BeginObject()
	w.EndObject()
	w.EndObject()
	if got, want := string(w.Bytes()), `{"a":[],"b":{}}`; got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestPutDropsOversizedBuffers(t *testing.T) {
	w := &Writer{buf: make([]byte, 0, 2<<20)}
	Put(w) // must not panic; buffer is simply dropped
}

// BenchmarkWriter pins the zero-allocation claim: a pooled writer
// re-encoding a realistic response object must not allocate.
func BenchmarkWriter(b *testing.B) {
	w := Get()
	defer Put(w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.BeginObject()
		w.Name("query")
		w.String("hotels <in> paris & london")
		w.Name("total")
		w.Int(1234)
		w.Name("results")
		w.BeginArray()
		for j := 0; j < 10; j++ {
			w.BeginObject()
			w.Name("url")
			w.String("https://example.com/page?a=1&b=2")
			w.Name("score")
			w.Float(12.345678)
			w.EndObject()
		}
		w.EndArray()
		w.EndObject()
	}
}
