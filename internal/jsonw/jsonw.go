// Package jsonw is a hand-rolled streaming JSON writer for the hot
// response path. encoding/json reflects over the value, boxes every
// field into interfaces and allocates an intermediate buffer per
// response; this writer appends bytes straight into a pooled buffer
// the handler hands to the socket.
//
// The output is byte-identical to encoding/json for everything it can
// express — same HTML escaping (<, >, &), same control
// character and U+2028/U+2029 escapes, same � replacement for
// invalid UTF-8, same float formatting ('f' in the human range, 'e'
// with a trimmed exponent outside it). TestParity pins that contract
// against encoding/json itself, table cases plus a seeded randomized
// sweep, so a Go stdlib change or a writer regression fails loudly.
package jsonw

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Writer builds one JSON document in an append-only buffer. Begin/End
// and Name/value calls manage commas internally, so callers write
// values in order and never touch separators. The zero value is ready
// to use; Get/Put recycle writers (and their buffers) across requests.
type Writer struct {
	buf []byte
	// stack tracks, per open container, whether the next element needs
	// a leading comma.
	stack []bool
}

var pool = sync.Pool{New: func() any { return &Writer{} }}

// Get returns an empty pooled writer.
func Get() *Writer {
	w := pool.Get().(*Writer)
	w.Reset()
	return w
}

// Put recycles w. Oversized buffers (past 1 MiB) are dropped so one
// giant response cannot pin memory for the life of the process.
func Put(w *Writer) {
	if cap(w.buf) > 1<<20 {
		return
	}
	pool.Put(w)
}

// Reset truncates the writer for reuse, keeping its buffer capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.stack = w.stack[:0]
}

// Bytes returns the encoded document. The slice aliases the writer's
// buffer: it is valid until the next Reset/Put.
func (w *Writer) Bytes() []byte { return w.buf }

// elem starts a new element at the current depth, emitting the comma
// separator when one is due.
func (w *Writer) elem() {
	if n := len(w.stack); n > 0 {
		if w.stack[n-1] {
			w.buf = append(w.buf, ',')
		}
		w.stack[n-1] = true
	}
}

// BeginObject opens {.
func (w *Writer) BeginObject() {
	w.elem()
	w.buf = append(w.buf, '{')
	w.stack = append(w.stack, false)
}

// EndObject closes }.
func (w *Writer) EndObject() {
	w.buf = append(w.buf, '}')
	w.stack = w.stack[:len(w.stack)-1]
}

// BeginArray opens [.
func (w *Writer) BeginArray() {
	w.elem()
	w.buf = append(w.buf, '[')
	w.stack = append(w.stack, false)
}

// EndArray closes ].
func (w *Writer) EndArray() {
	w.buf = append(w.buf, ']')
	w.stack = w.stack[:len(w.stack)-1]
}

// Name writes an object member name; the next value call attaches to
// it without a comma in between.
func (w *Writer) Name(s string) {
	w.elem()
	w.appendString(s)
	w.buf = append(w.buf, ':')
	// The following value belongs to this name: suppress its comma.
	w.stack[len(w.stack)-1] = false
}

// String writes a string value.
func (w *Writer) String(s string) {
	w.elem()
	w.appendString(s)
}

// Int writes an integer value.
func (w *Writer) Int(n int) {
	w.elem()
	w.buf = strconv.AppendInt(w.buf, int64(n), 10)
}

// Bool writes a boolean value.
func (w *Writer) Bool(b bool) {
	w.elem()
	if b {
		w.buf = append(w.buf, "true"...)
	} else {
		w.buf = append(w.buf, "false"...)
	}
}

// Null writes a JSON null.
func (w *Writer) Null() {
	w.elem()
	w.buf = append(w.buf, "null"...)
}

// Float writes a float64 with encoding/json's exact formatting: 'f'
// format with minimal digits inside [1e-6, 1e21), 'e' outside it with
// the two-digit exponent's leading zero trimmed (1e-09 -> 1e-9).
// encoding/json refuses NaN and infinities with an error; a streaming
// writer has already committed its status line, so they encode as
// null instead (the closest JSON-representable value).
func (w *Writer) Float(f float64) {
	w.elem()
	if math.IsNaN(f) || math.IsInf(f, 0) {
		w.buf = append(w.buf, "null"...)
		return
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	w.buf = strconv.AppendFloat(w.buf, f, format, -1, 64)
	if format == 'e' {
		if n := len(w.buf); n >= 4 && w.buf[n-4] == 'e' && w.buf[n-3] == '-' && w.buf[n-2] == '0' {
			w.buf[n-2] = w.buf[n-1]
			w.buf = w.buf[:n-1]
		}
	}
}

// Newline appends a bare '\n' — json.Encoder.Encode parity, so
// handlers that switched from an Encoder emit byte-identical bodies.
func (w *Writer) Newline() {
	w.buf = append(w.buf, '\n')
}

const hexDigits = "0123456789abcdef"

// htmlSafe marks the ASCII bytes encoding/json's default (HTML-
// escaping) encoder emits verbatim inside strings: the printable
// range minus '"', '\\', '<', '>' and '&'.
var htmlSafe = func() (t [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		t[b] = true
	}
	t['"'], t['\\'], t['<'], t['>'], t['&'] = false, false, false, false, false
	return
}()

// appendString writes a quoted, escaped string with encoding/json's
// exact escaping rules.
func (w *Writer) appendString(s string) {
	buf := append(w.buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafe[b] {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\', '"':
				buf = append(buf, '\\', b)
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				// Control characters and the HTML-sensitive trio.
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == 0x2028 || c == 0x2029 {
			// Valid JSON but invalid JavaScript when embedded raw;
			// encoding/json escapes them and so do we.
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	w.buf = append(buf, '"')
}
