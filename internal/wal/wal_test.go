package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// appendN appends n put records and waits every commit.
func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		c := l.Append(&Record{Op: OpPut, Tenant: "t", Dataset: "d", ID: fmt.Sprintf("doc-%04d", i),
			Rec: map[string]string{"body": fmt.Sprintf("body %d", i)}})
		if err := c.Wait(context.Background()); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
}

// replayIDs replays dir and returns applied put IDs in order.
func replayIDs(t *testing.T, dir string) ([]string, ReplayStats) {
	t.Helper()
	var ids []string
	st, err := Replay(dir, func(r *Record) error {
		if r.Op == OpPut {
			ids = append(ids, r.ID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, policy := range []Policy{PolicyAlways, PolicyGroup, PolicyInterval} {
		t.Run(string(policy), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Policy: policy, Interval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 0, 50)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			ids, st := replayIDs(t, dir)
			if len(ids) != 50 {
				t.Fatalf("replayed %d records, want 50", len(ids))
			}
			for i, id := range ids {
				if want := fmt.Sprintf("doc-%04d", i); id != want {
					t.Fatalf("record %d = %s, want %s (order must match append order)", i, id, want)
				}
			}
			if st.Torn {
				t.Fatalf("clean log reported torn: %+v", st)
			}
		})
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyGroup, GroupBatch: 64, GroupWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// 256 concurrent writers; group commit should need far fewer than
	// 256 fsyncs (one per batch window, not one per write).
	var wg sync.WaitGroup
	for i := 0; i < 256; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := l.Append(&Record{Op: OpPut, ID: fmt.Sprintf("c%03d", i)})
			if err := c.Wait(context.Background()); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != 256 {
		t.Fatalf("appends = %d, want 256", st.Appends)
	}
	if st.Fsyncs >= 64 {
		t.Fatalf("group commit used %d fsyncs for 256 concurrent appends; expected heavy batching", st.Fsyncs)
	}
	if st.SyncedSeq != st.AppendedSeq {
		t.Fatalf("synced seq %d lags appended %d after all commits resolved", st.SyncedSeq, st.AppendedSeq)
	}
}

func TestGroupWaitBoundsLatency(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyGroup, GroupBatch: 1 << 20, GroupWait: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A lone append can never fill the batch; the max-latency bound
	// must commit it anyway.
	start := time.Now()
	c := l.Append(&Record{Op: OpPut, ID: "lonely"})
	if err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("lone append took %v, group wait bound not honored", e)
	}
}

func TestRotateTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	b1, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 10)
	b2, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20, 10)

	// Everything still replayable before truncation.
	if ids, _ := replayIDs(t, dir); len(ids) != 30 {
		t.Fatalf("pre-truncate replay = %d records, want 30", len(ids))
	}
	// Truncating before b1 drops the first segment only.
	if err := l.TruncateBefore(b1); err != nil {
		t.Fatal(err)
	}
	if ids, _ := replayIDs(t, dir); len(ids) != 20 {
		t.Fatalf("post-truncate(b1) replay = %d records, want 20", len(ids))
	}
	// Truncating before b2 leaves the active tail.
	if err := l.TruncateBefore(b2); err != nil {
		t.Fatal(err)
	}
	if ids, _ := replayIDs(t, dir); len(ids) != 10 {
		t.Fatalf("post-truncate(b2) replay = %d records, want 10", len(ids))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// tearTail chops n bytes off the end of segment seg, simulating a
// crash mid-append.
func tearTail(t *testing.T, dir string, seg int, n int) {
	t.Helper()
	name := filepath.Join(dir, segmentName(seg))
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(name, data[:len(data)-n], 0o644); err != nil {
		t.Fatal(err)
	}
}

// bootReplaySeal runs the boot-side recovery sequence — replay, then
// seal any torn tail — and returns the recovered put IDs.
func bootReplaySeal(t *testing.T, dir string) ([]string, ReplayStats) {
	t.Helper()
	ids, st := replayIDs(t, dir)
	if err := SealTornTail(st); err != nil {
		t.Fatal(err)
	}
	return ids, st
}

func TestReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	seg1 := l.ActiveSegment()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail of the newest segment; boot replays the intact
	// prefix, seals the tear, and a new Open starts a fresh segment.
	tearTail(t, dir, seg1, 4)
	ids, st := bootReplaySeal(t, dir)
	if !st.Torn {
		t.Fatal("torn tail not reported")
	}
	if len(ids) != 4 {
		t.Fatalf("replayed %d records, want 4 (intact prefix of torn segment)", len(ids))
	}
	l2, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	if l2.ActiveSegment() <= seg1 {
		t.Fatalf("reopened active segment %d not after %d", l2.ActiveSegment(), seg1)
	}
	appendN(t, l2, 5, 3)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	// The torn record (doc-0004) is lost with the tail; the sealed
	// prefix and everything in the new segment replay cleanly.
	ids, st = replayIDs(t, dir)
	if st.Torn {
		t.Fatalf("sealed log still reports torn: %+v", st)
	}
	if len(ids) != 7 {
		t.Fatalf("replayed %d records, want 7 (4 sealed + 3 new)", len(ids))
	}
}

// TestCrashAfterTearKeepsNewerAckedWrites pins the multi-crash
// contract: a tear sealed by boot k must not cost boot k+2 the
// acknowledged writes boot k+1 appended to newer segments.
func TestCrashAfterTearKeepsNewerAckedWrites(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	seg1 := l.ActiveSegment()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tearTail(t, dir, seg1, 4) // crash #1 tears doc-0004

	// Boot #2: recover 4 records, seal, append 3 more acked writes.
	ids, st := bootReplaySeal(t, dir)
	if !st.Torn || len(ids) != 4 {
		t.Fatalf("boot #2 recovery: torn=%v ids=%d, want torn with 4 records", st.Torn, len(ids))
	}
	l2, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 4, 3)
	seg2 := l2.ActiveSegment()
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	tearTail(t, dir, seg2, 4) // crash #2 tears doc-0006

	// Boot #3 must recover the first boot's sealed prefix AND the
	// second boot's intact acked writes — not stop at the old tear.
	ids, st = bootReplaySeal(t, dir)
	if !st.Torn {
		t.Fatal("boot #3: tear in newest segment not reported")
	}
	if len(ids) != 6 {
		t.Fatalf("boot #3 recovered %d records, want 6 (4 sealed + 2 intact acked)", len(ids))
	}
	for i, id := range ids {
		if want := fmt.Sprintf("doc-%04d", i); id != want {
			t.Fatalf("record %d = %s, want %s", i, id, want)
		}
	}
}

// TestDamagedSealedSegmentFailsReplay: damage behind the segment
// frontier is media corruption of acknowledged history, and replay
// must refuse to proceed (dropping the acked segments beyond the hole
// would be silent loss) instead of treating it like a torn tail.
func TestDamagedSealedSegmentFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	seg1 := l.ActiveSegment()
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tearTail(t, dir, seg1, 4) // rot inside a sealed segment
	_, err = Replay(dir, func(*Record) error { return nil })
	if !errors.Is(err, ErrDamagedHistory) {
		t.Fatalf("replay over damaged sealed segment: err=%v, want ErrDamagedHistory", err)
	}
}

func TestDiskErrorLatchesTyped(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("simulated EIO")
	var failing bool
	l, err := Open(dir, Options{
		Policy: PolicyAlways,
		InjectFault: func(op string) error {
			if failing && op == "sync" {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 3)
	failing = true
	c := l.Append(&Record{Op: OpPut, ID: "doomed"})
	err = c.Wait(context.Background())
	var werr *WriteError
	if !errors.As(err, &werr) {
		t.Fatalf("failed commit error = %v (%T), want *WriteError", err, err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("typed error does not wrap the cause: %v", err)
	}
	if l.Healthy() {
		t.Fatal("log still reports healthy after sync failure")
	}
	// Subsequent writes fail fast with the same typed error.
	if err := l.Append(&Record{Op: OpPut, ID: "after"}).Wait(context.Background()); !errors.As(err, &werr) {
		t.Fatalf("append after failure = %v, want *WriteError", err)
	}
	if st := l.Stats(); st.Failed == "" {
		t.Fatal("stats do not report the failure")
	}
	l.Close()
	// Every acknowledged record must replay. The doomed record hit
	// the OS before the fsync failed, so it may or may not survive —
	// exactly the contract for an unacknowledged write.
	ids, _ := replayIDs(t, dir)
	if len(ids) < 3 {
		t.Fatalf("replayed %d records after disk failure, want at least the 3 acknowledged", len(ids))
	}
	for i := 0; i < 3; i++ {
		if ids[i] != fmt.Sprintf("doc-%04d", i) {
			t.Fatalf("acknowledged record %d missing from replay: %v", i, ids)
		}
	}
}

func TestReplaySkipRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	applied := 0
	st, err := Replay(dir, func(r *Record) error {
		if r.ID == "doc-0002" {
			return ErrSkipRecord
		}
		applied++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 3 || st.Skipped != 1 || applied != 3 {
		t.Fatalf("applied=%d skipped=%d, want 3/1", st.Applied, st.Skipped)
	}
}

func TestReplayMissingDir(t *testing.T) {
	st, err := Replay(filepath.Join(t.TempDir(), "nope"), func(*Record) error { return nil })
	if err != nil || st.Records != 0 {
		t.Fatalf("missing dir: %v %+v", err, st)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, good := range []string{"always", "group", "interval"} {
		if _, err := ParsePolicy(good); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
