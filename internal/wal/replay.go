package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/frameio"
)

// ErrSkipRecord is returned by a replay apply function to drop one
// record and keep going — the escape hatch for records whose target
// no longer exists (a put racing a concurrent drop landed in the log
// after the drop; the ambiguity is inherent, the data is gone either
// way). Replay counts skips so recovery is never silently lossy.
var ErrSkipRecord = errors.New("wal: skip record")

// ReplayStats reports what a recovery pass found.
type ReplayStats struct {
	// Segments is how many segment files were read.
	Segments int
	// Records is how many records were decoded.
	Records int
	// Applied is how many records the apply function accepted.
	Applied int
	// Skipped counts records dropped via ErrSkipRecord.
	Skipped int
	// Torn reports that replay stopped at a damaged frame instead of
	// a clean end of log — the expected signature of a crash mid-
	// append (torn write) or media damage in the tail.
	Torn bool
	// TornSegment and TornOffset locate the damage: the byte offset
	// of the last fully verified frame in that segment file.
	TornSegment string
	TornOffset  int64
	// SegmentsAfterTear counts segment files newer than the damaged
	// one. Zero is the normal torn-tail case; non-zero means damage
	// in sealed history, and everything after it was NOT replayed.
	SegmentsAfterTear int
}

// Replay reads every WAL segment in dir in order and hands each
// record to apply. A torn or corrupt tail ends the replay cleanly at
// the last verified frame (recovery's contract: lose at most the
// unsynced suffix, never apply a partial record); apply errors other
// than ErrSkipRecord abort with the error. A missing directory
// replays zero records.
func Replay(dir string, apply func(*Record) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return st, fmt.Errorf("wal: replay: %w", err)
	}
	for i, n := range segs {
		name := filepath.Join(dir, segmentName(n))
		torn, err := replaySegment(name, apply, &st)
		if err != nil {
			return st, err
		}
		st.Segments++
		if torn {
			st.Torn = true
			st.TornSegment = name
			st.SegmentsAfterTear = len(segs) - i - 1
			// Damage ends the usable log: records in newer segments
			// were written after the damaged one and must not be
			// applied over a hole in history.
			break
		}
	}
	return st, nil
}

// replaySegment reads one segment file, reporting whether it ended
// in a torn/corrupt frame (recorded in st.TornOffset).
func replaySegment(name string, apply func(*Record) error, st *ReplayStats) (torn bool, err error) {
	f, err := os.Open(name)
	if err != nil {
		return false, fmt.Errorf("wal: replay %s: %w", name, err)
	}
	defer f.Close()
	if err := frameio.ExpectMagic(f, segmentMagic); err != nil {
		// A crash can leave a segment with a partial (or absent)
		// magic: created, never fsynced. Nothing in it was ever
		// acknowledged under any policy; treat it as a torn tail at
		// offset zero.
		st.TornOffset = 0
		return true, nil
	}
	fr := frameio.NewReader(f)
	fr.Skip(int64(len(segmentMagic)))
	for {
		payload, err := fr.Next()
		if err == io.EOF {
			return false, nil
		}
		var tornErr *frameio.ErrTruncatedFrame
		if errors.As(err, &tornErr) {
			st.TornOffset = tornErr.Offset
			return true, nil
		}
		if err != nil {
			return false, fmt.Errorf("wal: replay %s: %w", name, err)
		}
		var rec Record
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			// The frame passed its CRC but does not decode: not tail
			// damage, structural corruption. Stop here like a tear —
			// applying anything after a hole would reorder history.
			st.TornOffset = fr.Offset()
			return true, nil
		}
		st.Records++
		switch aerr := apply(&rec); {
		case aerr == nil:
			st.Applied++
		case errors.Is(aerr, ErrSkipRecord):
			st.Skipped++
		default:
			return false, fmt.Errorf("wal: replay %s record seq %d (%s %s/%s): %w",
				name, rec.Seq, rec.Op, rec.Tenant, rec.Dataset, aerr)
		}
	}
}
