package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/frameio"
)

// ErrSkipRecord is returned by a replay apply function to drop one
// record and keep going — the escape hatch for records whose target
// no longer exists (a put racing a concurrent drop landed in the log
// after the drop; the ambiguity is inherent, the data is gone either
// way). Replay counts skips so recovery is never silently lossy.
var ErrSkipRecord = errors.New("wal: skip record")

// ErrDamagedHistory reports damage inside a sealed segment — one with
// newer segments after it. A torn tail from a crash can only live in
// the newest segment (boot seals it with SealTornTail before opening
// the next one), so damage behind the frontier is media corruption of
// acknowledged history. Replay refuses to continue past it: the
// segments beyond the hole hold acked writes that would otherwise be
// dropped silently, and an operator has to decide what to salvage.
var ErrDamagedHistory = errors.New("wal: damaged sealed segment")

// ReplayStats reports what a recovery pass found.
type ReplayStats struct {
	// Segments is how many segment files were read.
	Segments int
	// Records is how many records were decoded.
	Records int
	// Applied is how many records the apply function accepted.
	Applied int
	// Skipped counts records dropped via ErrSkipRecord.
	Skipped int
	// Torn reports that the newest segment ended at a damaged frame
	// instead of a clean end of log — the expected signature of a
	// crash mid-append (torn write). TornSegment and TornOffset
	// locate it: the byte offset of the last fully verified frame in
	// that segment file, the point SealTornTail truncates back to.
	Torn        bool
	TornSegment string
	TornOffset  int64
}

// Replay reads every WAL segment in dir in order and hands each
// record to apply. A torn or corrupt tail of the NEWEST segment ends
// the replay cleanly at the last verified frame (recovery's contract:
// lose at most the unsynced suffix, never apply a partial record);
// the caller then seals the tear with SealTornTail before opening a
// new log generation. Damage in any older segment is another matter:
// boot sealed that segment's tail before the next one was created, so
// a bad frame behind the frontier is corruption of acknowledged
// history, and Replay aborts with ErrDamagedHistory rather than
// silently dropping the acked segments beyond it. Apply errors other
// than ErrSkipRecord abort with the error. A missing directory
// replays zero records.
func Replay(dir string, apply func(*Record) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return st, fmt.Errorf("wal: replay: %w", err)
	}
	for i, n := range segs {
		name := filepath.Join(dir, segmentName(n))
		torn, err := replaySegment(name, apply, &st)
		if err != nil {
			return st, err
		}
		st.Segments++
		if torn {
			st.Torn = true
			st.TornSegment = name
			if newer := len(segs) - i - 1; newer > 0 {
				return st, fmt.Errorf("wal: replay %s: damage at offset %d with %d newer segment(s) holding acknowledged writes: %w",
					name, st.TornOffset, newer, ErrDamagedHistory)
			}
			break
		}
	}
	return st, nil
}

// SealTornTail truncates the damage off the torn tail that Replay
// reported and fsyncs the file, making the tear point a durable,
// clean end of segment. Boot calls it between Replay and Open: once a
// newer segment exists, a damaged frame in this one can no longer be
// told apart from media corruption of acked history (see
// ErrDamagedHistory), so the tear must be sealed while the segment is
// still the newest. A stats value without a tear seals nothing.
func SealTornTail(st ReplayStats) error {
	if !st.Torn {
		return nil
	}
	f, err := os.OpenFile(st.TornSegment, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: seal torn tail: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(st.TornOffset); err != nil {
		return fmt.Errorf("wal: seal torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: seal torn tail: %w", err)
	}
	return nil
}

// replaySegment reads one segment file, reporting whether it ended
// in a torn/corrupt frame (recorded in st.TornOffset).
func replaySegment(name string, apply func(*Record) error, st *ReplayStats) (torn bool, err error) {
	f, err := os.Open(name)
	if err != nil {
		return false, fmt.Errorf("wal: replay %s: %w", name, err)
	}
	defer f.Close()
	if info, err := f.Stat(); err == nil && info.Size() == 0 {
		// A segment created but never flushed (crash before the first
		// sync), or a torn-at-zero tail a previous boot sealed. Either
		// way it holds nothing and is a clean, empty segment — not a
		// tear, or sealed history would look damaged forever.
		return false, nil
	}
	if err := frameio.ExpectMagic(f, segmentMagic); err != nil {
		// A crash can leave a segment with a partial (or absent)
		// magic: created, never fsynced. Nothing in it was ever
		// acknowledged under any policy; treat it as a torn tail at
		// offset zero.
		st.TornOffset = 0
		return true, nil
	}
	fr := frameio.NewReader(f)
	fr.Skip(int64(len(segmentMagic)))
	for {
		payload, err := fr.Next()
		if err == io.EOF {
			return false, nil
		}
		var tornErr *frameio.ErrTruncatedFrame
		if errors.As(err, &tornErr) {
			st.TornOffset = tornErr.Offset
			return true, nil
		}
		if err != nil {
			return false, fmt.Errorf("wal: replay %s: %w", name, err)
		}
		var rec Record
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			// The frame passed its CRC but does not decode: not tail
			// damage, structural corruption. Stop here like a tear —
			// applying anything after a hole would reorder history.
			st.TornOffset = fr.Offset()
			return true, nil
		}
		st.Records++
		switch aerr := apply(&rec); {
		case aerr == nil:
			st.Applied++
		case errors.Is(aerr, ErrSkipRecord):
			st.Skipped++
		default:
			return false, fmt.Errorf("wal: replay %s record seq %d (%s %s/%s): %w",
				name, rec.Seq, rec.Op, rec.Tenant, rec.Dataset, aerr)
		}
	}
}
