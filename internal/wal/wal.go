// Package wal implements the write-ahead log under the store's
// checkpoint cycle: every acknowledged mutation is appended as a
// CRC-framed record (internal/frameio) to an append-only segment
// file, so recovery is restore-latest-snapshot plus replay-WAL-tail
// instead of losing everything since the last checkpoint.
//
// Durability policy is explicit. PolicyAlways fsyncs before a write
// is acknowledged; PolicyGroup batches concurrent commits into one
// fsync (bounded by a batch size and a max-latency window) — the
// classic group commit that turns thousands of writers into tens of
// fsyncs; PolicyInterval acknowledges immediately and fsyncs on a
// timer, trading a bounded loss window for throughput.
//
// The log is segmented: each Open and each Rotate starts a new
// numbered segment file, and a completed checkpoint truncates
// segments older than the previous checkpoint boundary (two
// checkpoints of history, so recovery can fall back to the previous
// snapshot if the latest is damaged). Starting a fresh segment on
// every Open means appends never land after a torn tail left by a
// crash — the damaged segment is read-only history from then on.
//
// Failure model: the first append or fsync error latches the log
// into a failed state. Subsequent writes fail fast with a
// *WriteError; readers of the store are unaffected and keep serving
// the last durable state. A failed log never acknowledges a write it
// did not sync.
package wal

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frameio"
)

// Policy selects when an appended record is fsynced relative to its
// acknowledgment.
type Policy string

// The three fsync policies.
const (
	// PolicyAlways fsyncs before acknowledging. Concurrent appends
	// arriving during an in-flight fsync still coalesce into the next
	// one, so "always" is group commit with a zero wait window.
	PolicyAlways Policy = "always"
	// PolicyGroup acknowledges after the batch fsync that covers the
	// record: the committer syncs when GroupBatch records are pending
	// or the oldest has waited GroupWait, whichever comes first.
	PolicyGroup Policy = "group"
	// PolicyInterval acknowledges immediately and fsyncs every
	// Interval; a crash loses at most the last window of acked writes.
	PolicyInterval Policy = "interval"
)

// ParsePolicy validates a policy name from a flag.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyAlways, PolicyGroup, PolicyInterval:
		return Policy(s), nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want always, group or interval)", s)
}

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy (default PolicyGroup).
	Policy Policy
	// GroupBatch is the pending-append count that triggers a group
	// fsync (default 128). PolicyGroup only.
	GroupBatch int
	// GroupWait bounds how long the oldest pending append waits for
	// its batch to fill (default 2ms). PolicyGroup only.
	GroupWait time.Duration
	// Interval is the background fsync period for PolicyInterval
	// (default 100ms).
	Interval time.Duration
	// InjectFault, when non-nil, is consulted before disk operations
	// ("append", "sync", "rotate") and its error is treated as the
	// disk failing. Torture tests only.
	InjectFault func(op string) error
}

func (o Options) withDefaults() Options {
	if o.Policy == "" {
		o.Policy = PolicyGroup
	}
	if o.GroupBatch <= 0 {
		o.GroupBatch = 128
	}
	if o.GroupWait <= 0 {
		o.GroupWait = 2 * time.Millisecond
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// Record ops. The store appends exactly these; Replay hands them
// back for idempotent re-application.
const (
	OpPut           = "put"
	OpDelete        = "delete"
	OpCreateTenant  = "create-tenant"
	OpCreateDataset = "create-dataset"
	OpDropDataset   = "drop-dataset"
	OpGrant         = "grant"
	OpRevoke        = "revoke"
	OpSetQuota      = "set-quota"
)

// Record is one logged mutation. Fields are a union over the ops:
// put carries Rec, create-dataset carries Schema (the store's schema
// JSON, opaque to this package), grant carries Actor and Perm, and
// so on. Seq is assigned by Append and is strictly increasing within
// one process lifetime; replay order is file order, not Seq.
type Record struct {
	Seq     uint64            `json:"seq"`
	Op      string            `json:"op"`
	Tenant  string            `json:"tenant,omitempty"`
	Actor   string            `json:"actor,omitempty"`
	Dataset string            `json:"dataset,omitempty"`
	ID      string            `json:"id,omitempty"`
	Rec     map[string]string `json:"rec,omitempty"`
	Schema  json.RawMessage   `json:"schema,omitempty"`
	Perm    string            `json:"perm,omitempty"`
	N       int               `json:"n,omitempty"`
}

// WriteError is the typed error surfaced to writers once the log has
// failed (disk error on append or fsync). The store keeps serving
// reads; writes report this until the operator replaces the disk and
// restarts.
type WriteError struct {
	Op    string // "append", "sync", "rotate", "closed"
	Cause error
}

func (e *WriteError) Error() string {
	return fmt.Sprintf("wal: log unavailable (%s): %v", e.Op, e.Cause)
}

func (e *WriteError) Unwrap() error { return e.Cause }

// segmentMagic starts every segment file.
const segmentMagic = "SYMWAL1\n"

// segmentName formats the file name of segment n.
func segmentName(n int) string { return fmt.Sprintf("wal-%08d.log", n) }

// parseSegmentName extracts the segment number, reporting whether
// the name is a WAL segment at all.
func parseSegmentName(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "wal-%08d.log", &n); err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		if n, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// Commit is the durability handle returned by Append: Wait blocks
// until the record is durable under the log's policy (or the log
// fails, or ctx is done). A nil *Commit waits as "immediately
// durable" so callers without a WAL can wait unconditionally.
type Commit struct {
	err  error
	done chan struct{}
}

// resolvedCommit returns an already-settled commit (interval policy,
// failed log).
func resolvedCommit(err error) *Commit { return &Commit{err: err} }

// Wait blocks until the record is durable per the log's policy and
// returns the outcome. ctx abandons the wait, not the write: the
// record may still become durable afterwards.
func (c *Commit) Wait(ctx context.Context) error {
	if c == nil || c.done == nil {
		if c != nil {
			return c.err
		}
		return nil
	}
	select {
	case <-c.done:
		return c.err
	case <-ctx.Done():
		return fmt.Errorf("wal: commit wait abandoned: %w", ctx.Err())
	}
}

// Stats is the operator-facing view of a log, served on /statusz.
type Stats struct {
	Policy            string `json:"policy"`
	Appends           uint64 `json:"appends"`
	AppendedSeq       uint64 `json:"appendedSeq"`
	SyncedSeq         uint64 `json:"syncedSeq"`
	Fsyncs            uint64 `json:"fsyncs"`
	BytesAppended     uint64 `json:"bytesAppended"`
	Segments          int    `json:"segments"`
	ActiveSegment     int    `json:"activeSegment"`
	TruncatedSegments uint64 `json:"truncatedSegments"`
	Failed            string `json:"failed,omitempty"`
}

// Log is an append-only, segmented write-ahead log. Safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	// ioMu serializes fsync and segment switches against each other
	// while leaving mu free, so appends keep filling the buffer while
	// an fsync is in flight. Lock order: ioMu before mu, always.
	ioMu sync.Mutex

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	seg      int   // active segment number
	segs     []int // live segment numbers, ascending (includes active)
	seq      uint64
	flushed  uint64 // highest seq written through to the OS
	synced   uint64 // highest seq known durable
	pending  []*Commit
	oldest   time.Time // arrival of pending[0]
	failed   error
	closed   bool
	appends  uint64
	fsyncs   uint64
	bytes    uint64
	truncSeg uint64

	notify chan struct{}
	quit   chan struct{}
	ticker *time.Ticker // interval policy
	done   chan struct{}

	// failedFlag mirrors failed for lock-free health checks.
	failedFlag atomic.Bool
}

// Open creates (or joins) the log directory and starts a fresh
// active segment after any existing ones — a torn tail left by a
// crash stays untouched, and new appends are always reachable by
// replay. Call Replay first: Open does not read old segments.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	l := &Log{
		dir:    dir,
		opts:   opts,
		seg:    next,
		segs:   append(segs, next),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	if opts.Policy == PolicyInterval {
		l.ticker = time.NewTicker(opts.Interval)
	}
	go l.committer()
	return l, nil
}

// openSegmentLocked creates the segment file and writes its magic.
// The directory is fsynced so the new entry survives power loss: the
// file's own fsyncs make its contents durable, but on most
// filesystems only a directory fsync makes its *existence* durable,
// and an acked record in a segment whose entry vanished is a lost
// acked record. Callers hold mu (or own the log exclusively during
// Open), so the dir sync completes before any commit in the new
// segment can be acknowledged.
func (l *Log) openSegmentLocked(n int) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(n)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: segment %d: %w", n, err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment %d: %w", n, err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := frameio.WriteMagic(bw, segmentMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment %d: %w", n, err)
	}
	l.f, l.bw = f, bw
	return nil
}

// syncDir fsyncs a directory, making its entries (file creations,
// renames) durable against power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Policy returns the configured fsync policy.
func (l *Log) Policy() Policy { return l.opts.Policy }

// Healthy reports whether the log is accepting writes.
func (l *Log) Healthy() bool { return !l.failedFlag.Load() }

// Append serializes rec, assigns it the next sequence number and
// buffers it into the active segment. The returned Commit resolves
// when the record is durable under the policy (immediately for
// PolicyInterval). Appends on a failed or closed log resolve
// immediately with a *WriteError. Append never blocks on disk.
func (l *Log) Append(rec *Record) *Commit {
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return resolvedCommit(err)
	}
	if l.closed {
		l.mu.Unlock()
		return resolvedCommit(&WriteError{Op: "closed", Cause: fmt.Errorf("log closed")})
	}
	l.seq++
	rec.Seq = l.seq
	payload, err := json.Marshal(rec)
	if err == nil && l.opts.InjectFault != nil {
		err = l.opts.InjectFault("append")
	}
	if err == nil {
		err = frameio.WriteFrame(l.bw, payload)
	}
	if err != nil {
		werr := l.failLocked("append", err)
		l.mu.Unlock()
		return resolvedCommit(werr)
	}
	l.appends++
	l.bytes += uint64(len(payload)) + 12
	var c *Commit
	if l.opts.Policy == PolicyInterval {
		c = resolvedCommit(nil)
	} else {
		c = &Commit{done: make(chan struct{})}
		if len(l.pending) == 0 {
			l.oldest = time.Now()
		}
		l.pending = append(l.pending, c)
	}
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
	return c
}

// failLocked latches the log failed, resolves every pending commit
// with the error and returns the typed error. Callers hold mu.
func (l *Log) failLocked(op string, cause error) error {
	werr := &WriteError{Op: op, Cause: cause}
	if l.failed == nil {
		l.failed = werr
		l.failedFlag.Store(true)
		for _, c := range l.pending {
			c.err = werr
			close(c.done)
		}
		l.pending = nil
	}
	return l.failed
}

// committer is the single goroutine that turns pending appends into
// fsyncs under the configured policy.
func (l *Log) committer() {
	defer close(l.done)
	var tick <-chan time.Time
	if l.ticker != nil {
		tick = l.ticker.C
	}
	for {
		select {
		case <-l.quit:
			return
		case <-tick:
			l.syncNow()
		case <-l.notify:
			l.drainPending()
		}
	}
}

// drainPending syncs batches until no commit is pending, honoring
// the group window.
func (l *Log) drainPending() {
	for {
		l.mu.Lock()
		n := len(l.pending)
		if n == 0 || l.failed != nil {
			l.mu.Unlock()
			return
		}
		var wait time.Duration
		if l.opts.Policy == PolicyGroup && n < l.opts.GroupBatch {
			if elapsed := time.Since(l.oldest); elapsed < l.opts.GroupWait {
				wait = l.opts.GroupWait - elapsed
			}
		}
		l.mu.Unlock()
		if wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-l.quit:
				timer.Stop()
				return
			case <-l.notify:
				// More appends arrived; re-evaluate the batch size.
				timer.Stop()
			case <-timer.C:
			}
			continue
		}
		l.syncNow()
	}
}

// syncNow flushes the buffer and fsyncs, resolving every commit
// covered by the sync. The fsync itself runs outside mu so appends
// keep buffering; ioMu keeps it ordered against rotation.
func (l *Log) syncNow() error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()

	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if len(l.pending) == 0 && l.seq == l.synced {
		// Nothing new since the last sync (idle interval tick).
		l.mu.Unlock()
		return nil
	}
	batch := l.pending
	l.pending = nil
	covered := l.seq
	err := l.bw.Flush()
	if err == nil && l.opts.InjectFault != nil {
		err = l.opts.InjectFault("sync")
	}
	if err != nil {
		werr := l.failLocked("sync", err)
		for _, c := range batch {
			c.err = werr
			close(c.done)
		}
		l.mu.Unlock()
		return werr
	}
	l.flushed = covered
	f := l.f
	l.mu.Unlock()

	serr := f.Sync()

	l.mu.Lock()
	if serr != nil {
		werr := l.failLocked("sync", serr)
		for _, c := range batch {
			c.err = werr
			close(c.done)
		}
		l.mu.Unlock()
		return werr
	}
	if covered > l.synced {
		l.synced = covered
	}
	l.fsyncs++
	l.mu.Unlock()
	for _, c := range batch {
		close(c.done)
	}
	return nil
}

// Sync forces everything appended so far onto disk and waits for it.
// An explicit barrier for shutdown paths and tests.
func (l *Log) Sync() error { return l.syncNow() }

// Rotate seals the active segment (flush + fsync + close) and starts
// the next one, returning the new active segment's number: every
// record appended before Rotate returned lives in a segment below
// the boundary. The checkpointer rotates before each snapshot so a
// completed checkpoint can truncate sealed history.
func (l *Log) Rotate() (boundary int, err error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return 0, l.failed
	}
	if l.closed {
		return 0, &WriteError{Op: "closed", Cause: fmt.Errorf("log closed")}
	}
	batch := l.pending
	l.pending = nil
	covered := l.seq
	err = l.bw.Flush()
	if err == nil && l.opts.InjectFault != nil {
		err = l.opts.InjectFault("rotate")
	}
	if err == nil {
		err = l.f.Sync()
	}
	if err != nil {
		werr := l.failLocked("rotate", err)
		for _, c := range batch {
			c.err = werr
			close(c.done)
		}
		return 0, werr
	}
	if covered > l.synced {
		l.synced = covered
	}
	l.flushed = covered
	l.fsyncs++
	l.f.Close()
	next := l.seg + 1
	if err := l.openSegmentLocked(next); err != nil {
		werr := l.failLocked("rotate", err)
		for _, c := range batch {
			c.err = werr
			close(c.done)
		}
		return 0, werr
	}
	l.seg = next
	l.segs = append(l.segs, next)
	for _, c := range batch {
		close(c.done)
	}
	return next, nil
}

// ActiveSegment returns the number of the segment currently
// receiving appends.
func (l *Log) ActiveSegment() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// TruncateBefore deletes sealed segments numbered below boundary.
// The checkpointer calls it after a completed checkpoint with the
// boundary of the checkpoint before it, keeping two checkpoints of
// replayable history for snapshot-fallback recovery. Removal errors
// are returned but non-fatal: an un-truncated segment costs disk,
// not correctness (replay is idempotent).
func (l *Log) TruncateBefore(boundary int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	kept := l.segs[:0]
	for _, n := range l.segs {
		if n >= boundary || n == l.seg {
			kept = append(kept, n)
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segmentName(n))); err != nil && !os.IsNotExist(err) {
			if firstErr == nil {
				firstErr = err
			}
			kept = append(kept, n)
			continue
		}
		l.truncSeg++
	}
	l.segs = kept
	return firstErr
}

// Stats returns a point-in-time operator view.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Policy:            string(l.opts.Policy),
		Appends:           l.appends,
		AppendedSeq:       l.seq,
		SyncedSeq:         l.synced,
		Fsyncs:            l.fsyncs,
		BytesAppended:     l.bytes,
		Segments:          len(l.segs),
		ActiveSegment:     l.seg,
		TruncatedSegments: l.truncSeg,
	}
	if l.failed != nil {
		st.Failed = l.failed.Error()
	}
	return st
}

// Close stops the committer, syncs everything appended and closes
// the active segment. Pending commits resolve (successfully if the
// final sync succeeds). Safe to call once.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()

	close(l.quit)
	<-l.done
	if l.ticker != nil {
		l.ticker.Stop()
	}
	err := l.syncNow()
	l.mu.Lock()
	defer l.mu.Unlock()
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if _, ok := err.(*WriteError); ok && l.failed != nil {
		// Close after a failure reports the original failure.
		return l.failed
	}
	return err
}
