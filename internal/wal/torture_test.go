package wal_test

// Crash-injection torture harness for the write-ahead log. Each cycle
// re-execs this test binary as a child writer (TestMain intercepts the
// WAL_TORTURE_CHILD env), lets it append records under one of the
// three fsync policies while acknowledging each durable write on
// stdout, SIGKILLs it at a randomized point, optionally injects a torn
// write into the tail of the log it left behind (truncation, a flipped
// byte, trailing garbage), and then recovers.
//
// The contract asserted after every kill:
//
//   - replay never fails — a torn tail is where the log ends, not an
//     error;
//   - the recovered records are a contiguous prefix of what the child
//     wrote: no gaps, no reordering, and no partially-applied document
//     (every recovered record carries all of its fields);
//   - under the "always" and "group" policies, every acknowledged
//     write is recovered when the tail was not deliberately corrupted
//     — acknowledgement means fsynced. "interval" acknowledges before
//     syncing, so only the prefix contract applies;
//   - the store rebuilt from the log serves exactly the applied
//     records, and serves them whole.
//
// TestTortureCrashLoopSameLog adds the multi-crash dimension: the
// same log directory survives a loop of kill/corrupt/recover cycles,
// with each boot sealing the torn tail before the next child writes —
// so a tear from one crash can never cost a later boot the acked
// writes of the generations in between.
//
// TORTURE_CYCLES=<n> raises the cycle count (CI runs >= 50).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/wal"
)

func TestMain(m *testing.M) {
	if os.Getenv("WAL_TORTURE_CHILD") == "1" {
		tortureChild()
		return
	}
	os.Exit(m.Run())
}

func tortureSchema() store.Schema {
	return store.Schema{
		Name: "inv",
		Key:  "sku",
		Fields: []store.Field{
			{Name: "sku", Type: store.TypeString, Required: true},
			{Name: "title", Type: store.TypeString, Searchable: true},
			{Name: "body", Type: store.TypeString, Searchable: true},
		},
	}
}

// tortureChild is the re-exec'd writer: create the schema, then append
// documents as fast as the policy acknowledges them, reporting each
// durable write, until the parent kills the process.
func tortureChild() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "torture child:", err)
		os.Exit(2)
	}
	pol, err := wal.ParsePolicy(os.Getenv("WAL_TORTURE_POLICY"))
	if err != nil {
		fail(err)
	}
	start := 0
	if v := os.Getenv("WAL_TORTURE_START"); v != "" {
		if start, err = strconv.Atoi(v); err != nil {
			fail(err)
		}
	}
	l, err := wal.Open(os.Getenv("WAL_TORTURE_DIR"), wal.Options{Policy: pol})
	if err != nil {
		fail(err)
	}
	ctx := context.Background()
	schemaJSON, err := json.Marshal(tortureSchema())
	if err != nil {
		fail(err)
	}
	ddl := []*wal.Record{
		{Op: wal.OpCreateTenant, Tenant: "t", Actor: "ann"},
		{Op: wal.OpCreateDataset, Tenant: "t", Actor: "ann", Schema: schemaJSON},
	}
	for _, rec := range ddl {
		if err := l.Append(rec).Wait(ctx); err != nil {
			fail(err)
		}
	}
	fmt.Println("READY")
	for i := start; ; i++ {
		id := fmt.Sprintf("doc-%06d", i)
		rec := &wal.Record{Op: wal.OpPut, Tenant: "t", Dataset: "inv", ID: id, Rec: map[string]string{
			"sku":   id,
			"title": fmt.Sprintf("torture item %d", i),
			"body":  fmt.Sprintf("payload for document %d under policy %s", i, pol),
		}}
		if err := l.Append(rec).Wait(ctx); err != nil {
			fail(err)
		}
		// The ack line races the kill by design: an acked-but-unprinted
		// record only under-counts acks, which weakens — never breaks —
		// the acked-writes-recovered assertion.
		fmt.Printf("ACK %d\n", i)
	}
}

func TestTortureKillRecover(t *testing.T) {
	cycles := 9
	if v := os.Getenv("TORTURE_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad TORTURE_CYCLES %q", v)
		}
		cycles = n
	}
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("torture: %d cycles, seed %d (set in code to reproduce)", cycles, seed)
	policies := []wal.Policy{wal.PolicyAlways, wal.PolicyGroup, wal.PolicyInterval}
	corruptions := []string{"truncate", "flip", "garbage"}
	for i := 0; i < cycles; i++ {
		pol := policies[i%len(policies)]
		// Odd cycles add a torn write on top of the kill, so both the
		// crash point and the damage mode are exercised across the run.
		corrupt := ""
		if i%2 == 1 {
			corrupt = corruptions[rng.Intn(len(corruptions))]
		}
		name := fmt.Sprintf("cycle%02d_%s", i, pol)
		if corrupt != "" {
			name += "_" + corrupt
		}
		t.Run(name, func(t *testing.T) {
			tortureCycle(t, rng, pol, corrupt)
		})
	}
}

// runTortureChild re-execs the writer against dir (appending from doc
// index start), SIGKILLs it at a randomized point, and returns the
// highest document index it acknowledged as durable (-1: none) plus
// its stderr.
func runTortureChild(t *testing.T, rng *rand.Rand, dir string, pol wal.Policy, start int) (int64, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"WAL_TORTURE_CHILD=1",
		"WAL_TORTURE_DIR="+dir,
		"WAL_TORTURE_POLICY="+string(pol),
		"WAL_TORTURE_START="+strconv.Itoa(start),
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// lastAck tracks the highest document index the child reported as
	// durably written (-1: none).
	var lastAck atomic.Int64
	lastAck.Store(-1)
	ready := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc := bufio.NewScanner(stdout)
		readyClosed := false
		for sc.Scan() {
			line := sc.Text()
			if line == "READY" {
				if !readyClosed {
					close(ready)
					readyClosed = true
				}
				continue
			}
			var n int64
			if _, err := fmt.Sscanf(line, "ACK %d", &n); err == nil {
				lastAck.Store(n)
			}
		}
	}()

	// Randomize the kill point: usually after the schema is durable and
	// some documents are flowing, sometimes in the middle of the DDL
	// itself.
	if rng.Intn(4) > 0 {
		select {
		case <-ready:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			wg.Wait()
			cmd.Wait()
			t.Fatalf("child never became ready; stderr: %s", stderr.String())
		}
		time.Sleep(time.Duration(rng.Intn(20)+1) * time.Millisecond)
	} else {
		time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	cmd.Wait() // the SIGKILL exit status is the expected outcome
	return lastAck.Load(), stderr.String()
}

func tortureCycle(t *testing.T, rng *rand.Rand, pol wal.Policy, corrupt string) {
	dir := t.TempDir()
	la, childErr := runTortureChild(t, rng, dir, pol, 0)

	if corrupt != "" {
		corruptTail(t, rng, dir, corrupt)
	}

	// Recovery: replay into a fresh store, checking the log-level
	// contract record by record.
	s := store.New(store.WithShardTarget(2))
	next := 0        // contiguity: the only acceptable put sequence is doc-0, doc-1, ...
	appliedPuts := 0 // puts the store accepted (all of them unless the DDL was torn away)
	_, err := wal.Replay(dir, func(rec *wal.Record) error {
		if rec.Op == wal.OpPut {
			if want := fmt.Sprintf("doc-%06d", next); rec.ID != want {
				t.Fatalf("recovered %s out of order, want %s", rec.ID, want)
			}
			for _, f := range []string{"sku", "title", "body"} {
				if rec.Rec[f] == "" {
					t.Fatalf("partially written document %s recovered: missing %s", rec.ID, f)
				}
			}
			next++
		}
		aerr := s.ApplyWAL(rec)
		if aerr == nil && rec.Op == wal.OpPut {
			appliedPuts++
		}
		return aerr
	})
	if err != nil {
		t.Fatalf("recovery replay failed (must never happen): %v; child stderr: %s", err, childErr)
	}

	// Durability: an acknowledged write under always/group was fsynced
	// before the ack, so a pure kill (no injected damage) cannot lose it.
	t.Logf("killed after ack %d; recovered %d puts (%d applied)", la, next, appliedPuts)
	if corrupt == "" && pol != wal.PolicyInterval && int64(next) <= la {
		t.Fatalf("policy %s lost acknowledged writes: last ack doc-%06d, recovered only %d records", pol, la, next)
	}

	// Store-level: the rebuilt index serves exactly the applied records,
	// and serves them whole.
	ctx := context.Background()
	ds, derr := s.DatasetContext(ctx, "t", "ann", "inv", store.PermRead)
	if derr != nil {
		if appliedPuts != 0 {
			t.Fatalf("store applied %d puts but the dataset is missing: %v", appliedPuts, derr)
		}
		return // DDL fell in the lost tail; nothing further to check
	}
	if ds.Len() != appliedPuts {
		t.Fatalf("recovered store holds %d records, replay applied %d", ds.Len(), appliedPuts)
	}
	if appliedPuts > 0 {
		id := fmt.Sprintf("doc-%06d", appliedPuts-1)
		rec, ok := ds.Get(id)
		if !ok || rec["title"] == "" || rec["body"] == "" {
			t.Fatalf("recovered store serves a partial document %s: %v %v", id, rec, ok)
		}
		hits, err := ds.SearchContext(ctx, store.SearchRequest{Query: "torture item"})
		if err != nil || len(hits) == 0 {
			t.Fatalf("recovered index not searchable: %v %v", hits, err)
		}
	}
}

// TestTortureCrashLoopSameLog crashes repeatedly against ONE log
// directory: every boot replays, seals the torn tail, and hands the
// same dir to the next child. This is the multi-crash shape the
// fresh-TempDir cycles above cannot see — a tear left by crash k must
// not cost boot k+2 the acknowledged writes boot k+1 appended to
// newer segments.
func TestTortureCrashLoopSameLog(t *testing.T) {
	cycles := 8
	if v := os.Getenv("TORTURE_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad TORTURE_CYCLES %q", v)
		}
		cycles = n
	}
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("crash loop: %d cycles, seed %d (set in code to reproduce)", cycles, seed)
	dir := t.TempDir()
	policies := []wal.Policy{wal.PolicyAlways, wal.PolicyGroup}
	corruptions := []string{"truncate", "flip", "garbage"}
	ackedFloor := int64(-1) // highest doc index known durable on disk
	start := 0
	for cycle := 0; cycle < cycles; cycle++ {
		pol := policies[cycle%len(policies)]
		la, childErr := runTortureChild(t, rng, dir, pol, start)
		if la > ackedFloor {
			ackedFloor = la
		}
		// Every third cycle also tears the newest segment's tail, so
		// sealed tears and injected damage interleave across boots.
		corrupted := cycle%3 == 2
		if corrupted {
			corruptTail(t, rng, dir, corruptions[rng.Intn(len(corruptions))])
		}

		// Boot: replay (contiguous, whole documents, never an error),
		// then seal the tear so the next generation opens clean.
		s := store.New(store.WithShardTarget(2))
		next := 0
		st, err := wal.Replay(dir, func(rec *wal.Record) error {
			if rec.Op == wal.OpPut {
				if want := fmt.Sprintf("doc-%06d", next); rec.ID != want {
					t.Fatalf("cycle %d: recovered %s out of order, want %s", cycle, rec.ID, want)
				}
				for _, f := range []string{"sku", "title", "body"} {
					if rec.Rec[f] == "" {
						t.Fatalf("cycle %d: partially written document %s: missing %s", cycle, rec.ID, f)
					}
				}
				next++
			}
			return s.ApplyWAL(rec)
		})
		if err != nil {
			t.Fatalf("cycle %d: recovery replay failed (must never happen): %v; child stderr: %s", cycle, err, childErr)
		}
		if err := wal.SealTornTail(st); err != nil {
			t.Fatalf("cycle %d: seal torn tail: %v", cycle, err)
		}
		if corrupted {
			// Injected damage may destroy synced frames; the surviving
			// prefix becomes the durable floor later cycles must hold.
			ackedFloor = int64(next) - 1
		} else if int64(next) <= ackedFloor {
			t.Fatalf("cycle %d (%s): acked writes lost across crashes: floor doc-%06d, recovered only %d puts",
				cycle, pol, ackedFloor, next)
		}
		t.Logf("cycle %d (%s): acked through %d, recovered %d puts (torn=%v, corrupted=%v)",
			cycle, pol, la, next, st.Torn, corrupted)
		start = next
	}
}

// corruptTail injects a torn write into the end of the newest segment:
// what an interrupted disk leaves behind.
func corruptTail(t *testing.T, rng *rand.Rand, dir, mode string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	last := filepath.Join(dir, names[len(names)-1])
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	size := info.Size()
	switch mode {
	case "truncate":
		cut := int64(rng.Intn(64) + 1)
		if cut > size {
			cut = size
		}
		if err := os.Truncate(last, size-cut); err != nil {
			t.Fatal(err)
		}
	case "flip":
		if size == 0 {
			return
		}
		span := int64(64)
		if span > size {
			span = size
		}
		off := size - 1 - rng.Int63n(span)
		f, err := os.OpenFile(last, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xFF
		if _, err := f.WriteAt(b, off); err != nil {
			t.Fatal(err)
		}
	case "garbage":
		junk := make([]byte, rng.Intn(128)+1)
		rng.Read(junk)
		f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.Write(junk); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown corruption mode %q", mode)
	}
}
