// Command benchboot measures what the zero-copy boot path buys: the
// time from "process has a data dir" to "first query answered with
// 200" and the resident set needed to serve, mapped (--mmap=on boot:
// the v3 snapshot is attached as views, postings and records
// materialize copy-on-write) versus heap (the same snapshot decoded
// eagerly, as every boot before v3 worked).
//
// For each corpus size the harness builds a checkpoint once, then
// re-execs itself as a child per mode. The child restores, serves one
// dataset over HTTP, reports the time to its first 200 and its VmRSS
// — after the first query and again after a query burst, so lazy
// materialization's steady-state cost is visible, not just the cold
// number. The parent writes BENCH_boot.json and gates the mapped
// speedup: boot time is supposed to stop scaling with corpus size,
// and a regression that quietly decodes everything again shows up as
// the ratio collapsing.
//
// --smoke builds only the smallest corpus and gates mapped speedup at
// >= 3x for CI; the full run (12k/120k/600k docs) gates >= 10x boot
// and >= 2x RSS at the largest size.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// childResult is one (mode, size) measurement, produced by the
// re-exec'd child on stdout.
type childResult struct {
	Mode              string  `json:"mode"` // mapped | heap
	Docs              int     `json:"docs"`
	SnapshotBytes     int64   `json:"snapshotBytes"`
	RestoreMs         float64 `json:"restoreMs"`
	TimeToFirst200Ms  float64 `json:"timeToFirst200Ms"`
	RSSAfterFirstKB   int64   `json:"rssAfterFirst200KB"`
	RSSAfterBurstKB   int64   `json:"rssAfterBurstKB"`
	MappedBytes       int64   `json:"mappedBytes"`
	MaterializedBytes int64   `json:"materializedBytes"`
}

// sizeResult pairs the two modes at one corpus size with the ratios
// the gate reads.
type sizeResult struct {
	Docs        int         `json:"docs"`
	Mapped      childResult `json:"mapped"`
	Heap        childResult `json:"heap"`
	BootSpeedup float64     `json:"bootSpeedup"` // heap first-200 / mapped first-200
	RSSRatio    float64     `json:"rssRatio"`    // heap RSS / mapped RSS, after the burst
}

type benchOutput struct {
	Benchmark   string         `json:"benchmark"`
	Environment map[string]any `json:"environment"`
	Sizes       []sizeResult   `json:"sizes"`
	GateDocs    int            `json:"gateDocs"`
	GateBootMin float64        `json:"gateBootSpeedupMin"`
	GateRSSMin  float64        `json:"gateRssRatioMin"`
	GateOK      bool           `json:"gateOk"`
	Summary     string         `json:"summary"`
}

func main() {
	if os.Getenv("BENCHBOOT_CHILD") == "1" {
		childMain()
		return
	}
	smoke := flag.Bool("smoke", false, "smallest corpus only, 3x gate — for CI")
	out := flag.String("o", "BENCH_boot.json", "output path")
	dir := flag.String("dir", "", "corpus cache directory (empty = temp, removed after)")
	seed := flag.Int64("seed", 1, "corpus seed")
	flag.Parse()

	sizes := []int{12000, 120000, 600000}
	gateBoot, gateRSS := 10.0, 2.0
	if *smoke {
		sizes = sizes[:1]
		// A 12k corpus decodes fast even on the heap path, so the smoke
		// gate only asks for the ratio's sign, not its asymptote — and
		// skips the RSS gate, where a small corpus drowns in runtime
		// baseline.
		gateBoot, gateRSS = 3.0, 0
	}
	root := *dir
	if root == "" {
		var err error
		if root, err = os.MkdirTemp("", "benchboot-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(root)
	}

	output := benchOutput{
		Benchmark:   "zero-copy boot: time-to-first-200 and RSS, mapped (--mmap=on) vs heap boot from the same v3 checkpoint (cmd/benchboot)",
		Environment: environment(*smoke),
		GateDocs:    sizes[len(sizes)-1],
		GateBootMin: gateBoot,
		GateRSSMin:  gateRSS,
	}
	for _, n := range sizes {
		cdir := filepath.Join(root, fmt.Sprintf("docs-%d", n))
		if err := buildCorpus(cdir, n, *seed); err != nil {
			log.Fatalf("corpus %d: %v", n, err)
		}
		sr := sizeResult{Docs: n}
		for _, mode := range []string{"heap", "mapped"} {
			res, err := runChild(cdir, mode, n)
			if err != nil {
				log.Fatalf("%s boot at %d docs: %v", mode, n, err)
			}
			log.Printf("%d docs %s: first 200 in %.1fms (restore %.1fms), RSS %d KB after burst",
				n, mode, res.TimeToFirst200Ms, res.RestoreMs, res.RSSAfterBurstKB)
			if mode == "heap" {
				sr.Heap = res
			} else {
				sr.Mapped = res
			}
		}
		sr.BootSpeedup = sr.Heap.TimeToFirst200Ms / sr.Mapped.TimeToFirst200Ms
		sr.RSSRatio = float64(sr.Heap.RSSAfterBurstKB) / float64(sr.Mapped.RSSAfterBurstKB)
		output.Sizes = append(output.Sizes, sr)
	}

	last := output.Sizes[len(output.Sizes)-1]
	output.GateOK = last.BootSpeedup >= gateBoot && (gateRSS == 0 || last.RSSRatio >= gateRSS)
	output.Summary = fmt.Sprintf(
		"at %d docs: mapped boot %.1fx faster to first 200 (%.1fms vs %.1fms), %.1fx less resident memory after a query burst (%d KB vs %d KB); gate (boot >= %.0fx, rss >= %.0fx) %s",
		last.Docs, last.BootSpeedup, last.Mapped.TimeToFirst200Ms, last.Heap.TimeToFirst200Ms,
		last.RSSRatio, last.Mapped.RSSAfterBurstKB, last.Heap.RSSAfterBurstKB,
		gateBoot, gateRSS, map[bool]string{true: "PASS", false: "FAIL"}[output.GateOK])

	buf, err := json.MarshalIndent(output, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
	log.Print(output.Summary)
	if !output.GateOK {
		os.Exit(1)
	}
}

// environment mirrors BENCH_persist.json's block so the two files can
// be read against the same hardware context.
func environment(smoke bool) map[string]any {
	cpu := "unknown"
	if b, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				cpu = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
				break
			}
		}
	}
	cmd := "go run ./cmd/benchboot"
	if smoke {
		cmd += " --smoke"
	}
	return map[string]any{
		"goos":    runtime.GOOS,
		"goarch":  runtime.GOARCH,
		"cpu":     cpu,
		"cores":   runtime.NumCPU(),
		"command": cmd,
		"date":    time.Now().Format("2006-01-02"),
	}
}

// buildCorpus checkpoints an n-document dataset into dir, reusing a
// finished build from a previous run (marker file) when present.
func buildCorpus(dir string, n int, seed int64) error {
	marker := filepath.Join(dir, "corpus.ok")
	if b, err := os.ReadFile(marker); err == nil && strings.TrimSpace(string(b)) == strconv.Itoa(n) {
		return nil
	}
	log.Printf("building %d-doc corpus in %s", n, dir)
	os.RemoveAll(dir)
	ctx := context.Background()
	p := core.New(core.Config{Seed: seed})
	if err := p.Store.CreateTenant("bench", "ann"); err != nil {
		return err
	}
	if err := p.Store.SetQuota("bench", "ann", n+1000); err != nil {
		return err
	}
	if _, err := p.Store.CreateDataset("bench", "ann", store.Schema{
		Name: "docs",
		Key:  "sku",
		Fields: []store.Field{
			{Name: "sku", Type: store.TypeString, Required: true},
			{Name: "title", Type: store.TypeString, Searchable: true},
			{Name: "body", Type: store.TypeString, Searchable: true},
		},
	}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 2000)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("word%c%04d", 'a'+i%7, i)
	}
	const batch = 2000
	recs := make([]store.Record, 0, batch)
	for i := 0; i < n; i++ {
		var b strings.Builder
		b.WriteString("catalog entry")
		if i%50 == 0 {
			b.WriteString(" exciting") // the probe query's term
		}
		for w := 0; w < 12+rng.Intn(10); w++ {
			b.WriteByte(' ')
			b.WriteString(vocab[rng.Intn(len(vocab))])
		}
		recs = append(recs, store.Record{
			"sku":   fmt.Sprintf("doc-%07d", i),
			"title": fmt.Sprintf("Item %d %s", i, vocab[rng.Intn(len(vocab))]),
			"body":  b.String(),
		})
		if len(recs) == batch || i == n-1 {
			if _, err := p.Store.AddBatchContext(ctx, "bench", "ann", "docs", recs); err != nil {
				return err
			}
			recs = recs[:0]
		}
	}
	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		return err
	}
	if err := cp.CheckpointContext(ctx); err != nil {
		return err
	}
	return os.WriteFile(marker, []byte(strconv.Itoa(n)), 0o644)
}

// runChild re-execs this binary in child mode and decodes its report.
// The snapshot file is read once first, so both modes boot against a
// warm page cache and the comparison is decode cost, not disk.
func runChild(dir, mode string, docs int) (childResult, error) {
	var res childResult
	snap, err := os.ReadFile(filepath.Join(dir, "store.snap"))
	if err != nil {
		return res, err
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"BENCHBOOT_CHILD=1",
		"BENCHBOOT_DIR="+dir,
		"BENCHBOOT_MODE="+mode,
		"BENCHBOOT_DOCS="+strconv.Itoa(docs),
	)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return res, err
	}
	if err := cmd.Start(); err != nil {
		return res, err
	}
	dec := json.NewDecoder(bufio.NewReader(outPipe))
	decErr := dec.Decode(&res)
	if err := cmd.Wait(); err != nil {
		return res, fmt.Errorf("child: %w", err)
	}
	if decErr != nil {
		return res, fmt.Errorf("child output: %w", decErr)
	}
	res.SnapshotBytes = int64(len(snap))
	return res, nil
}

// childMain is the measured boot: restore, serve, one probe query,
// then a burst, reporting wall times and VmRSS at each stage.
func childMain() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchboot child:", err)
		os.Exit(2)
	}
	ctx := context.Background()
	dir := os.Getenv("BENCHBOOT_DIR")
	mode := os.Getenv("BENCHBOOT_MODE")
	docs, _ := strconv.Atoi(os.Getenv("BENCHBOOT_DOCS"))

	t0 := time.Now()
	p := core.New(core.Config{Seed: 1})
	cp, err := p.NewCheckpointer(dir, 0)
	if err != nil {
		fail(err)
	}
	cp.MMap = mode == "mapped"
	restored, err := cp.RestoreLatestContext(ctx)
	if err != nil {
		fail(err)
	}
	if !restored {
		fail(fmt.Errorf("nothing restored from %s", dir))
	}
	restoreMs := float64(time.Since(t0).Microseconds()) / 1000

	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		ds, err := p.Store.DatasetContext(r.Context(), "bench", "ann", "docs", store.PermRead)
		if err != nil {
			http.Error(w, err.Error(), 500)
			return
		}
		hits, err := ds.SearchContext(r.Context(), store.SearchRequest{Query: r.URL.Query().Get("q"), Limit: 10})
		if err != nil || len(hits) == 0 {
			http.Error(w, fmt.Sprintf("no hits: %v", err), 500)
			return
		}
		fmt.Fprintf(w, "%d hits\n", len(hits))
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	go http.Serve(ln, mux)

	probe := func(q string) error {
		resp, err := http.Get(fmt.Sprintf("http://%s/search?q=%s", ln.Addr(), q))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("query %q: HTTP %d", q, resp.StatusCode)
		}
		return nil
	}
	if err := probe("exciting"); err != nil {
		fail(err)
	}
	first200Ms := float64(time.Since(t0).Microseconds()) / 1000
	rssFirst := rssKB()

	// The burst: random vocabulary terms, so the mapped side pays its
	// lazy decodes for a realistic working set before the second RSS
	// reading.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		probe(fmt.Sprintf("word%c%04d", 'a'+rng.Intn(7), rng.Intn(2000)))
	}
	rssBurst := rssKB()

	var mapped, materialized int64
	for _, st := range p.Store.Status() {
		mapped += st.MappedBytes
		materialized += st.MaterializedBytes
	}
	json.NewEncoder(os.Stdout).Encode(childResult{
		Mode:              mode,
		Docs:              docs,
		RestoreMs:         restoreMs,
		TimeToFirst200Ms:  first200Ms,
		RSSAfterFirstKB:   rssFirst,
		RSSAfterBurstKB:   rssBurst,
		MappedBytes:       mapped,
		MaterializedBytes: materialized,
	})
}

// rssKB returns VmRSS from /proc/self/status, after returning freed
// heap to the OS so both modes report retained footprint, not
// allocator slack.
func rssKB() int64 {
	debug.FreeOSMemory()
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			n, _ := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			return n
		}
	}
	return 0
}
