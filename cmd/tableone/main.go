// Command tableone regenerates the paper's Table I, "Comparison of
// Symphony with related systems", by probing live capability
// emulations of each system (see internal/baselines) rather than
// asserting the matrix. Exit status is non-zero if any probed
// capability disagrees with the paper's published row.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
)

func main() {
	seed := flag.Int64("seed", 1, "synthetic web seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	p := core.New(core.Config{Seed: *seed})
	systems, err := baselines.AllSystems(p)
	if err != nil {
		log.Fatal(err)
	}
	table, err := baselines.RenderTableI(ctx, systems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Table I: Comparison of Symphony with related systems (probed live) ===")
	fmt.Println()
	fmt.Print(table)
	fmt.Println()

	// Verify against the paper's published matrix.
	expected := baselines.ExpectedTableI()
	failures := 0
	for _, s := range systems {
		row, err := baselines.Probe(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		exp := expected[s.Name()]
		check := func(label, got, wantSub string) {
			if !strings.Contains(strings.ToLower(got), strings.ToLower(wantSub)) {
				fmt.Printf("MISMATCH %s/%s: got %q, paper says %q\n", s.Name(), label, got, wantSub)
				failures++
			}
		}
		check("api", row.SearchAPI, exp["api"])
		sites := "no"
		if row.CustomSites {
			sites = "supported"
		}
		check("sites", sites, exp["sites"])
		check("data", row.ProprietaryData, exp["data"])
		var deploy []string
		for _, d := range row.Deployment {
			deploy = append(deploy, string(d))
		}
		switch exp["deploy"] {
		case "hosted":
			check("deploy", strings.Join(deploy, ";"), "hosted")
		case "search box":
			check("deploy", strings.Join(deploy, ";"), "search box")
		case "no assistance":
			check("deploy", strings.Join(deploy, ";"), "no assistance")
		case "3rd-party":
			check("deploy", strings.Join(deploy, ";"), "3rd-party")
		case "surfaced":
			check("deploy", strings.Join(deploy, ";"), "surfaced")
		}
	}
	if failures > 0 {
		log.Fatalf("%d cells disagree with the paper", failures)
	}
	fmt.Println("All probed capabilities agree with the paper's Table I.")
}
