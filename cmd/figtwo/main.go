// Command figtwo reproduces the paper's Figures 1 and 2.
//
// With -fig1 it replays the design-interface session of Fig 1: the
// source palette, the drag-n-drop construction of the GamerQueen
// result layout, and the resulting configuration tree.
//
// By default it reproduces Fig 2, "Query Execution in Symphony": it
// publishes the GamerQueen application, submits a customer query and
// prints the stage-by-stage trace — query received from the embedded
// JavaScript, primary content search over proprietary inventory,
// supplemental queries driven by primary fields, merge/format to
// HTML, response returned.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/runtime"
)

func main() {
	fig1 := flag.Bool("fig1", false, "replay the Fig 1 design-interface session instead of Fig 2")
	seed := flag.Int64("seed", 1, "synthetic web seed")
	query := flag.String("q", "", "customer query (default: first inventory title)")
	flag.Parse()

	p := core.New(core.Config{Seed: *seed, ClickBase: "http://symphony.example/click"})
	sc, err := demo.GamerQueen(p, *seed, 8)
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()

	if *fig1 {
		printFig1(sc)
		return
	}
	printFig2(p, sc, *query)
}

func printFig1(sc *demo.Scenario) {
	fmt.Println("=== Fig 1: Design Interface (programmatic session) ===")
	fmt.Println()
	fmt.Println("Source palette (left bar):")
	for _, s := range []string{
		"proprietary: inventory (Ann's registered data)",
		"websearch / imagesearch / videosearch / newssearch (built-in services)",
		"ads (adCenter integration)", "service (SOAP/REST web services)",
	} {
		fmt.Println("  -", s)
	}
	fmt.Println()
	fmt.Println("Application after the drag-n-drop session:")
	data, err := json.MarshalIndent(sc.App, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
	fmt.Println()
	inv := sc.App.Primary[0]
	fmt.Printf("Result layout of %q binds fields %v and places supplemental slots %v\n",
		inv.ID, inv.Layout.BoundFields(), inv.Layout.SourceSlots())
}

func printFig2(p *core.Platform, sc *demo.Scenario, query string) {
	if query == "" {
		query = sc.Titles[0]
	}
	fmt.Println("=== Fig 2: Query Execution in Symphony ===")
	fmt.Printf("GamerQueen customer query: %q\n\n", query)
	resp, err := p.Query(context.Background(), "gamerqueen", runtime.Query{Text: query, Customer: "demo-customer"})
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range resp.Trace.Stages {
		line := fmt.Sprintf("  %-28s %-55s", st.Name, st.Detail)
		if st.Duration > 0 {
			line += fmt.Sprintf(" %10s", st.Duration.Round(1000).String())
		}
		if st.Items > 0 {
			line += fmt.Sprintf("  items=%d", st.Items)
		}
		if st.Err != "" {
			line += "  ERR=" + st.Err
		}
		fmt.Println(line)
	}
	fmt.Printf("  %-28s %55s %10s\n", "TOTAL", "", resp.Trace.Total.Round(1000))
	fmt.Println()
	if len(resp.Blocks) > 0 && len(resp.Blocks[0].Items) > 0 {
		top := resp.Blocks[0].Items[0]
		fmt.Printf("Top result: %s\n", top["title"])
		for suppID, items := range resp.Blocks[0].SupplementalByItem[0] {
			var labels []string
			for _, it := range items {
				if t := it["title"]; t != "" {
					labels = append(labels, t)
				} else if pr := it["price"]; pr != "" {
					labels = append(labels, "price="+pr+" instock="+it["instock"])
				}
			}
			fmt.Printf("  supplemental %-10s -> %s\n", suppID, strings.Join(labels, " | "))
		}
	}
	fmt.Printf("\nHTML fragment returned to the embedded JavaScript: %d bytes\n", len(resp.HTML))
}
