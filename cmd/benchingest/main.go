// Command benchingest measures the write path: documents per second
// into a live dataset as a function of batch size, WAL fsync policy
// and index shard count.
//
// Every configuration ingests the same synthetic corpus into a fresh
// store. Batch size 1 drives the single-document path (one PutContext
// — and, with a WAL, one commit wait — per record); larger batches go
// through AddBatchContext, which analyzes the whole batch on a worker
// pool, applies it with one lock acquisition per index shard, and
// rides one group commit per batch instead of one fsync per record.
//
// The run writes BENCH_ingest.json: one row per configuration plus,
// per policy × shard count, the batch-256 speedup over batch-1 — the
// headline claim is >= 3x under the durable policies, and the full
// run exits non-zero if the synced policies miss it. --smoke shrinks
// the corpus for CI and reports without gating.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/store"
	"repro/internal/wal"
)

// row is one measured configuration in BENCH_ingest.json.
type row struct {
	Policy     string  `json:"policy"` // "none" = no WAL attached
	Shards     int     `json:"shards"`
	Batch      int     `json:"batch"`
	Docs       int     `json:"docs"`
	ElapsedMs  float64 `json:"elapsedMs"`
	DocsPerSec float64 `json:"docsPerSec"`
}

// speedup summarizes batch-256 against batch-1 for one policy/shards.
type speedup struct {
	Policy  string  `json:"policy"`
	Shards  int     `json:"shards"`
	Speedup float64 `json:"speedupBatch256"`
}

type benchOutput struct {
	GOMAXPROCS int       `json:"gomaxprocs"`
	Docs       int       `json:"docs"`
	Rows       []row     `json:"rows"`
	Speedups   []speedup `json:"speedups"`
	// GateOK: every durable policy (always, group) reached >= 3x at
	// batch 256. Informational in --smoke.
	GateOK bool `json:"gateOk"`
}

func benchSchema() store.Schema {
	return store.Schema{
		Name: "inv",
		Key:  "sku",
		Fields: []store.Field{
			{Name: "sku", Type: store.TypeString, Required: true},
			{Name: "title", Type: store.TypeString, Searchable: true},
			{Name: "body", Type: store.TypeString, Searchable: true},
			{Name: "price", Type: store.TypeNumber},
		},
	}
}

var vocab = []string{
	"arcade", "baroque", "copper", "dynamo", "ember", "fjord", "gadget",
	"harbor", "indigo", "jubilee", "kestrel", "lattice", "meridian",
	"nimbus", "opal", "prairie", "quartz", "rustic", "saffron", "tundra",
}

// corpus builds n records deterministically (no RNG: the mix of vocab
// words is index-derived, identical across runs and configurations).
func corpus(n int) []store.Record {
	recs := make([]store.Record, n)
	for i := range recs {
		w1, w2, w3 := vocab[i%len(vocab)], vocab[(i*7+3)%len(vocab)], vocab[(i*13+5)%len(vocab)]
		recs[i] = store.Record{
			"sku":   fmt.Sprintf("d%06d", i),
			"title": fmt.Sprintf("%s %s gadget %d", w1, w2, i),
			"body":  fmt.Sprintf("the %s %s with a %s finish, model %d of the bench corpus", w1, w2, w3, i),
			"price": fmt.Sprintf("%d", i%500+1),
		}
	}
	return recs
}

// run ingests recs into a fresh store under one configuration and
// returns the measured row. policy "none" attaches no log.
func run(policy string, shards, batch int, recs []store.Record) (row, error) {
	r := row{Policy: policy, Shards: shards, Batch: batch, Docs: len(recs)}
	s := store.New(store.WithShardTarget(shards))
	var l *wal.Log
	if policy != "none" {
		dir, err := os.MkdirTemp("", "benchingest-wal-")
		if err != nil {
			return r, err
		}
		defer os.RemoveAll(dir)
		pol, err := wal.ParsePolicy(policy)
		if err != nil {
			return r, err
		}
		l, err = wal.Open(dir, wal.Options{Policy: pol})
		if err != nil {
			return r, err
		}
		defer l.Close()
		s.AttachWAL(l)
	}
	if err := s.CreateTenant("bench", "ann"); err != nil {
		return r, err
	}
	if _, err := s.CreateDataset("bench", "ann", benchSchema()); err != nil {
		return r, err
	}
	ctx := context.Background()
	ds, err := s.DatasetContext(ctx, "bench", "ann", "inv", store.PermWrite)
	if err != nil {
		return r, err
	}
	start := time.Now()
	if batch <= 1 {
		for _, rec := range recs {
			if _, err := ds.PutContext(ctx, rec); err != nil {
				return r, err
			}
		}
	} else {
		for lo := 0; lo < len(recs); lo += batch {
			hi := lo + batch
			if hi > len(recs) {
				hi = len(recs)
			}
			if _, err := ds.AddBatchContext(ctx, recs[lo:hi]); err != nil {
				return r, err
			}
		}
	}
	elapsed := time.Since(start)
	if ds.Len() != len(recs) {
		return r, fmt.Errorf("ingested %d docs, dataset holds %d", len(recs), ds.Len())
	}
	r.ElapsedMs = float64(elapsed.Microseconds()) / 1000
	r.DocsPerSec = float64(len(recs)) / elapsed.Seconds()
	return r, nil
}

func main() {
	smoke := flag.Bool("smoke", false, "tiny corpus for CI; report without gating")
	out := flag.String("o", "BENCH_ingest.json", "output path")
	docs := flag.Int("docs", 0, "corpus size per configuration (0 = 4000, or 800 with --smoke)")
	flag.Parse()

	n := *docs
	if n == 0 {
		n = 4000
		if *smoke {
			n = 800
		}
	}
	recs := corpus(n)

	policies := []string{"none", "always", "group", "interval"}
	shardCounts := []int{1, 4}
	batches := []int{1, 16, 64, 256}

	o := benchOutput{GOMAXPROCS: runtime.GOMAXPROCS(0), Docs: n, GateOK: true}
	rate := make(map[string]float64) // "policy/shards/batch" -> docs/s
	for _, pol := range policies {
		for _, sh := range shardCounts {
			for _, b := range batches {
				r, err := run(pol, sh, b, recs)
				if err != nil {
					log.Fatalf("benchingest: %s shards=%d batch=%d: %v", pol, sh, b, err)
				}
				o.Rows = append(o.Rows, r)
				rate[fmt.Sprintf("%s/%d/%d", pol, sh, b)] = r.DocsPerSec
				fmt.Printf("%-9s shards=%d batch=%-4d %10.0f docs/s\n", pol, sh, b, r.DocsPerSec)
			}
		}
	}
	for _, pol := range policies {
		for _, sh := range shardCounts {
			base := rate[fmt.Sprintf("%s/%d/1", pol, sh)]
			top := rate[fmt.Sprintf("%s/%d/256", pol, sh)]
			sp := speedup{Policy: pol, Shards: sh}
			if base > 0 {
				sp.Speedup = top / base
			}
			o.Speedups = append(o.Speedups, sp)
			// The durability gate: group commit must buy the synced
			// policies their headline batched-ingest win.
			if (pol == "always" || pol == "group") && sp.Speedup < 3 {
				o.GateOK = false
			}
			fmt.Printf("%-9s shards=%d batch-256 speedup %5.1fx\n", pol, sh, sp.Speedup)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(o); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (gateOk=%v)\n", *out, o.GateOK)
	if !o.GateOK && !*smoke {
		log.Fatal("benchingest: durable-policy batch-256 speedup below 3x")
	}
}
