package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/jsonw"
	"repro/internal/webcorpus"
)

// Saturation mode: a closed-loop throughput sweep over the in-process
// query path (engine.Query + response encoding), bypassing HTTP so the
// measurement isolates what this layer owns — shard fan-out
// scheduling, request scratch, and response encoding. Two stages run
// the identical sweep:
//
//   - legacy: the seed behaviour — per-query goroutine fan-out,
//     fresh allocations for all request scratch, reflective
//     encoding/json responses.
//   - tuned: the shared shard executor with adaptive fan-out, pooled
//     request scratch, and the hand-rolled zero-allocation encoder.
//
// Concurrency sweeps 1 → 4×GOMAXPROCS, so the curve shows both the
// idle-box fan-out benefit and the saturated plateau where adaptive
// degree collapses queries to inline execution. The tenant-scale
// corpus (a few thousand docs per vertical) is deliberate: it is the
// regime the hosted platform serves — many small tenants — and the
// regime where fixed per-request overheads, not postings scoring,
// decide throughput.
//
// Gates (full runs only): saturated tuned QPS >= 1.5x legacy, and the
// warm match-query allocation count cut at least 5x, to <= 15/op.

type satPoint struct {
	Concurrency int     `json:"concurrency"`
	Ops         int     `json:"ops"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50Ms"`
	P99Ms       float64 `json:"p99Ms"`
}

type satStage struct {
	Name   string     `json:"name"`
	Points []satPoint `json:"points"`
	// SaturatedQPS is the best throughput the stage reached anywhere on
	// the curve — the capacity number an operator would provision by.
	SaturatedQPS float64 `json:"saturatedQps"`
	// AllocsPerOp is the warm match-query allocation count at the index
	// layer (the BenchmarkQuery/match metric, measured in-process).
	AllocsPerOp float64 `json:"warmMatchAllocsPerOp"`
}

type saturationOutput struct {
	ShardTarget    int                 `json:"shardTarget"`
	WebDocs        int                 `json:"webDocs"`
	Stages         []satStage          `json:"stages"`
	Speedup        float64             `json:"saturatedSpeedup"`
	AllocReduction float64             `json:"allocReduction"`
	QPSGateOK      bool                `json:"qpsGateOk"`   // speedup >= 1.5
	AllocGateOK    bool                `json:"allocGateOk"` // tuned <= 15 and reduction >= 5
	Executor       index.ExecutorStats `json:"executor"`
}

// satTuning flips the whole stack between the two stages.
func satTuning(tuned bool) {
	index.SetExecutorEnabled(tuned)
	index.SetScratchPooling(tuned)
}

// satQueries draws the query mix from the corpus's own entity
// universe, Zipf-weighted like the workload harness, so hot queries
// repeat (exercising the analysis memo) while the tail stays diverse.
func satQueries(seed int64) []string {
	cfg := webcorpus.Config{Seed: seed}
	var qs []string
	qs = append(qs, webcorpus.Entities(cfg, webcorpus.TopicGames)...)
	qs = append(qs, webcorpus.Entities(cfg, webcorpus.TopicGeneral)...)
	return qs
}

// satMeasure runs one closed-loop point: c workers hammering
// engine.Query for d, each encoding every response. Returns the point
// and any worker error.
func satMeasure(e *engine.Engine, queries []string, tuned bool, c int, d time.Duration, seed int64) (satPoint, error) {
	ctx := context.Background()
	deadline := time.Now().Add(d)
	lats := make([][]time.Duration, c)
	errs := make([]error, c)
	var wg sync.WaitGroup
	for g := 0; g < c; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)*101))
			zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(queries)-1))
			buf := make([]time.Duration, 0, 4096)
			for time.Now().Before(deadline) {
				q := queries[int(zipf.Uint64())]
				t0 := time.Now()
				resp, err := e.Query(ctx, engine.Request{Query: q, Limit: 10})
				if err != nil {
					errs[g] = err
					return
				}
				if tuned {
					w := jsonw.Get()
					resp.EncodeJSON(w)
					jsonw.Put(w)
				} else if _, err := json.Marshal(resp); err != nil {
					errs[g] = err
					return
				}
				buf = append(buf, time.Since(t0))
			}
			lats[g] = buf
		}(g)
	}
	wg.Wait()
	var all []time.Duration
	for g := range lats {
		if errs[g] != nil {
			return satPoint{}, errs[g]
		}
		all = append(all, lats[g]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	return satPoint{
		Concurrency: c,
		Ops:         len(all),
		QPS:         float64(len(all)) / d.Seconds(),
		P50Ms:       pct(0.50),
		P99Ms:       pct(0.99),
	}, nil
}

// satAllocIndex builds the warm-allocation probe: a Zipf corpus and
// match query shaped like BenchmarkQuery/match, small enough to build
// in milliseconds (allocation counts on the warm path do not depend on
// corpus size).
func satAllocIndex(shards int) (*index.Index, index.Query) {
	ix := index.New(index.WithShards(shards))
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, 399)
	var b strings.Builder
	for i := 0; i < 3000; i++ {
		b.Reset()
		for w := 0; w < 30; w++ {
			fmt.Fprintf(&b, "w%04d ", zipf.Uint64())
		}
		if i%9 == 0 {
			b.WriteString("saga ")
		}
		ix.Add(index.Document{
			ID:     fmt.Sprintf("d%05d", i),
			Fields: map[string]string{"body": b.String()},
		})
	}
	return ix, index.MatchQuery{Text: "w0001 w0007 saga"}
}

func satAllocsPerOp(ix *index.Index, q index.Query) float64 {
	ctx := context.Background()
	ix.SearchContext(ctx, q, index.SearchOptions{Limit: 10}) // warm
	return testing.AllocsPerRun(200, func() {
		if _, err := ix.SearchContext(ctx, q, index.SearchOptions{Limit: 10}); err != nil {
			log.Fatalf("benchserve: alloc probe: %v", err)
		}
	})
}

// runSaturation executes both stages and writes the curve CSV.
func runSaturation(seed int64, smoke bool, curvePath string) saturationOutput {
	cpus := runtime.GOMAXPROCS(0)
	shardTarget := 4
	if cpus > shardTarget {
		shardTarget = cpus
	}
	// CacheMB:0 semantics — no shared result cache is attached, so
	// every op exercises real evaluation, not cache hits.
	e := engine.New(webcorpus.Generate(webcorpus.Config{Seed: seed}), engine.WithIndexShards(shardTarget))
	queries := satQueries(seed)
	allocIx, allocQ := satAllocIndex(shardTarget)

	var cs []int
	for c := 1; c <= 4*cpus; c *= 2 {
		cs = append(cs, c)
	}
	if last := cs[len(cs)-1]; last < 4*cpus {
		cs = append(cs, 4*cpus)
	}
	pointDur := 600 * time.Millisecond
	if smoke {
		pointDur = 120 * time.Millisecond
	}

	var stages []satStage
	for _, stage := range []struct {
		name  string
		tuned bool
	}{{"legacy", false}, {"tuned", true}} {
		satTuning(stage.tuned)
		st := satStage{Name: stage.name}
		// One throwaway point warms every vertical's postings and the
		// OS caches so the two stages see identical starting states.
		if _, err := satMeasure(e, queries, stage.tuned, 2, pointDur/4, seed); err != nil {
			log.Fatalf("benchserve: saturate warmup (%s): %v", stage.name, err)
		}
		for _, c := range cs {
			pt, err := satMeasure(e, queries, stage.tuned, c, pointDur, seed)
			if err != nil {
				log.Fatalf("benchserve: saturate %s c=%d: %v", stage.name, c, err)
			}
			st.Points = append(st.Points, pt)
			if pt.QPS > st.SaturatedQPS {
				st.SaturatedQPS = pt.QPS
			}
			fmt.Printf("saturate %-6s c=%-3d %7.0f qps  p50 %6.2fms  p99 %6.2fms\n",
				stage.name, c, pt.QPS, pt.P50Ms, pt.P99Ms)
		}
		st.AllocsPerOp = satAllocsPerOp(allocIx, allocQ)
		fmt.Printf("saturate %-6s warm match allocs/op: %.1f\n", stage.name, st.AllocsPerOp)
		stages = append(stages, st)
	}
	satTuning(true) // leave the process in the production configuration

	legacy, tuned := stages[0], stages[1]
	out := saturationOutput{
		ShardTarget: shardTarget,
		WebDocs:     e.DocCount(webcorpus.VerticalWeb),
		Stages:      stages,
		Executor:    index.GetExecutorStats(),
	}
	if legacy.SaturatedQPS > 0 {
		out.Speedup = tuned.SaturatedQPS / legacy.SaturatedQPS
	}
	if tuned.AllocsPerOp > 0 {
		out.AllocReduction = legacy.AllocsPerOp / tuned.AllocsPerOp
	}
	out.QPSGateOK = out.Speedup >= 1.5
	out.AllocGateOK = tuned.AllocsPerOp <= 15 && out.AllocReduction >= 5

	if curvePath != "" {
		var sb strings.Builder
		sb.WriteString("stage,concurrency,qps,p50Ms,p99Ms\n")
		for _, st := range stages {
			for _, pt := range st.Points {
				fmt.Fprintf(&sb, "%s,%d,%.1f,%.3f,%.3f\n", st.Name, pt.Concurrency, pt.QPS, pt.P50Ms, pt.P99Ms)
			}
		}
		if err := os.WriteFile(curvePath, []byte(sb.String()), 0o644); err != nil {
			log.Fatalf("benchserve: writing curve: %v", err)
		}
		fmt.Printf("wrote %s\n", curvePath)
	}
	return out
}
