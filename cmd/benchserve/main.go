// Command benchserve measures the serving layer's quality of service
// with a closed-loop multi-tenant load harness. It self-hosts the
// demo platform behind the real HTTP stack (admission control +
// per-query deadlines, exactly as symphonyd wires them) and replays
// Zipf query streams against it in two scenarios:
//
//  1. solo: the light tenant (winefinder) alone — its baseline
//     latency profile: two closed-loop visitors with think time.
//  2. mixed: the same light tenant while a heavy tenant (gamerqueen)
//     offers 100x its load — 200 concurrent visitors against the
//     light tenant's 2. Per-tenant admission pins the heavy tenant to
//     one in-flight query plus a one-deep wait queue and sheds its
//     arrival bursts with 429, so the light tenant's tail latency
//     must stay near its baseline.
//
// The run writes BENCH_serve.json with both scenarios plus the
// isolation verdict: light-tenant p99 in the mixed run divided by
// solo p99 (the paper-style claim is ratio <= 2 — one tenant's
// traffic spike is not another tenant's outage). The full run exits
// non-zero when the verdict fails.
//
// --smoke shrinks the request budget for CI; with so few samples p99
// is a single order statistic, so smoke reports the verdict without
// gating on it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/host"
	"repro/internal/workload"
)

// scenarioResult is one harness run in the output file.
type scenarioResult struct {
	Name   string          `json:"name"`
	Report workload.Report `json:"report"`
}

// benchOutput is the BENCH_serve.json schema.
type benchOutput struct {
	GOMAXPROCS   int              `json:"gomaxprocs"`
	QueryTimeout string           `json:"queryTimeout"`
	LightSlots   int              `json:"lightSlots"`
	HeavySlots   int              `json:"heavySlots"`
	LightWorkers int              `json:"lightWorkers"`
	HeavyWorkers int              `json:"heavyWorkers"`
	Scenarios    []scenarioResult `json:"scenarios"`
	// Saturation is the executor/scratch/encoder A/B sweep (nil when
	// --mode=isolation).
	Saturation *saturationOutput `json:"saturation,omitempty"`
	// Isolation verdict: mixed-run light p99 over solo light p99.
	LightP99SoloMs  float64 `json:"lightP99SoloMs"`
	LightP99MixedMs float64 `json:"lightP99MixedMs"`
	IsolationRatio  float64 `json:"isolationRatio"`
	IsolationOK     bool    `json:"isolationOk"` // ratio <= 2
	HeavyShed       int     `json:"heavyShed"`   // 429s absorbed by the heavy tenant
	Admission       any     `json:"admission"`
}

func main() {
	smoke := flag.Bool("smoke", false, "tiny request budget for CI")
	out := flag.String("o", "BENCH_serve.json", "output path")
	seed := flag.Int64("seed", 1, "synthetic web seed")
	queryTimeout := flag.Duration("query-timeout", 2*time.Second, "per-query deadline")
	mode := flag.String("mode", "all", "what to run: isolation, saturate, or all")
	curve := flag.String("curve", "BENCH_serve_curve.csv", "throughput-vs-concurrency CSV path for saturate mode (empty = skip)")
	flag.Parse()
	runIsolation := *mode == "all" || *mode == "isolation"
	runSaturate := *mode == "all" || *mode == "saturate"
	if !runIsolation && !runSaturate {
		log.Fatalf("benchserve: --mode must be isolation, saturate or all, got %q", *mode)
	}

	o := benchOutput{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		QueryTimeout: queryTimeout.String(),
	}

	if runIsolation {
		runIsolationScenarios(&o, *seed, *smoke, *queryTimeout)
	}
	if runSaturate {
		sat := runSaturation(*seed, *smoke, *curve)
		o.Saturation = &sat
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(o); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fail := false
	if runIsolation {
		fmt.Printf("isolation: light p99 %.2fms solo -> %.2fms under 100x neighbor (ratio %.2f, ok=%v); heavy shed %d\n",
			o.LightP99SoloMs, o.LightP99MixedMs, o.IsolationRatio, o.IsolationOK, o.HeavyShed)
		fail = fail || !o.IsolationOK
	}
	if runSaturate {
		s := o.Saturation
		fmt.Printf("saturation: tuned %.0f qps vs legacy %.0f qps (%.2fx, ok=%v); warm match allocs %.1f -> %.1f (%.1fx cut, ok=%v)\n",
			s.Stages[1].SaturatedQPS, s.Stages[0].SaturatedQPS, s.Speedup, s.QPSGateOK,
			s.Stages[0].AllocsPerOp, s.Stages[1].AllocsPerOp, s.AllocReduction, s.AllocGateOK)
		fail = fail || !s.QPSGateOK || !s.AllocGateOK
	}
	fmt.Printf("wrote %s\n", *out)
	if fail && !*smoke {
		os.Exit(1)
	}
}

// runIsolationScenarios fills o with the original two-scenario QoS
// harness: the light tenant solo, then under a 100x heavy neighbor.
func runIsolationScenarios(o *benchOutput, seed int64, smoke bool, queryTimeout time.Duration) {
	lightBudget, heavyBudget := 400, 3600
	if smoke {
		lightBudget, heavyBudget = 40, 360
	}

	// QoS mirrors symphonyd's defaults, with an explicit per-tenant
	// split: the heavy tenant is pinned to one in-flight query and a
	// one-deep wait queue (arrival bursts shed as 429), the light
	// tenant keeps normal capacity.
	const lightSlots, heavySlots = 4, 1
	admission := host.NewAdmissionController(host.AdmissionConfig{
		Slots: lightSlots,
		Queue: 1,
		TenantSlots: map[string]int{
			"gamerqueen": heavySlots,
		},
	})

	p := core.New(core.Config{Seed: seed})
	gq, err := demo.GamerQueen(p, seed, 10)
	if err != nil {
		log.Fatal(err)
	}
	defer gq.Close()
	if _, err := demo.WineFinder(p, seed, 10); err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(p.ServeWith("http://bench.local", core.ServeOptions{
		QueryTimeout: queryTimeout,
		Admission:    admission,
	}))
	defer srv.Close()

	light := workload.Class{
		Name: "light", App: "winefinder", Workers: 2,
		Requests: lightBudget, Seed: seed,
		Think: 100 * time.Millisecond,
	}
	// 100x offered load: 200 closed-loop visitors against the light
	// class's 2, with a request budget sized so heavy pressure lasts
	// the whole light run. Visitors think between requests (jittered,
	// so the pool behaves like independent users, not a phase-locked
	// wave); their bursts exceed the heavy tenant's one slot + one
	// queue entry and shed as 429. A zero-think pool would instead
	// measure raw CPU contention on GOMAXPROCS=1 — admission bounds a
	// tenant's concurrency, not its scheduler share, and a client
	// spinning on 429s is the rate limiter's problem (compose
	// Limiter), not admission's.
	heavy := workload.Class{
		Name: "heavy", App: "gamerqueen", Workers: 200,
		Requests: heavyBudget, Seed: seed + 1,
		Think:       1300 * time.Millisecond,
		ShedBackoff: 10 * time.Millisecond,
	}

	ctx := context.Background()
	run := func(name string, classes ...workload.Class) workload.Report {
		rep, err := workload.Run(ctx, workload.HarnessConfig{
			BaseURL: srv.URL,
			Classes: classes,
		})
		if err != nil {
			log.Fatalf("benchserve: %s: %v", name, err)
		}
		for _, c := range rep.Classes {
			fmt.Printf("%-6s %-6s %5d req  %4d ok %4d shed %3d deadline  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  %6.1f qps\n",
				name, c.Class, c.Requests, c.OK, c.Shed, c.Deadline, c.P50Ms, c.P95Ms, c.P99Ms, c.QPS)
		}
		return rep
	}

	solo := run("solo", light)
	mixed := run("mixed", light, heavy)

	soloLight, _ := solo.ClassByName("light")
	mixedLight, _ := mixed.ClassByName("light")
	mixedHeavy, _ := mixed.ClassByName("heavy")
	ratio := 0.0
	if soloLight.P99Ms > 0 {
		ratio = mixedLight.P99Ms / soloLight.P99Ms
	}

	o.LightSlots = lightSlots
	o.HeavySlots = heavySlots
	o.LightWorkers = light.Workers
	o.HeavyWorkers = heavy.Workers
	o.Scenarios = []scenarioResult{{"solo", solo}, {"mixed", mixed}}
	o.LightP99SoloMs = soloLight.P99Ms
	o.LightP99MixedMs = mixedLight.P99Ms
	o.IsolationRatio = ratio
	o.IsolationOK = ratio > 0 && ratio <= 2
	o.HeavyShed = mixedHeavy.Shed
	o.Admission = admission.Stats()
}
