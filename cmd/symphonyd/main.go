// Command symphonyd hosts a demo Symphony platform over HTTP with the
// three paper applications published (GamerQueen, WineFinder,
// VideoStore). Visit:
//
//	/apps                          published applications
//	/query?app=gamerqueen&q=...    execute an application
//	/embed.js?app=gamerqueen       the designer's embed loader
//	/click?app=...&url=...         logged click redirect
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/demo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	seed := flag.Int64("seed", 1, "synthetic web seed")
	flag.Parse()

	base := "http://" + *addr
	p := core.New(core.Config{Seed: *seed, ClickBase: base + "/click"})
	gq, err := demo.GamerQueen(p, *seed, 10)
	if err != nil {
		log.Fatal(err)
	}
	defer gq.Close()
	if _, err := demo.WineFinder(p, *seed, 10); err != nil {
		log.Fatal(err)
	}
	if _, err := demo.VideoStore(p, *seed, 10); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("symphonyd: hosting %v\n", p.Registry.List())
	fmt.Printf("symphonyd: try %s/query?app=gamerqueen&q=%s\n", base, "game")
	log.Fatal(http.ListenAndServe(*addr, p.Serve(base)))
}
