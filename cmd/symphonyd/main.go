// Command symphonyd hosts a demo Symphony platform over HTTP with the
// three paper applications published (GamerQueen, WineFinder,
// VideoStore). Visit:
//
//	/apps                          published applications
//	/query?app=gamerqueen&q=...    execute an application
//	/embed.js?app=gamerqueen       the designer's embed loader
//	/click?app=...&url=...         logged click redirect
//
// With --data-dir the daemon is durable: designers' proprietary data
// is restored from the directory on boot, checkpointed there
// periodically in the background (incrementally: only datasets
// mutated since the previous checkpoint are re-encoded), and written
// one final time on graceful shutdown (SIGINT/SIGTERM), so a
// kill/restart cycle loses nothing that was checkpointed or
// acknowledged at shutdown.
//
// With --wal (default on) the data dir also carries a write-ahead
// log under the checkpoint cycle: every acknowledged write is
// appended to an fsynced segmented log, boot replays the tail the
// latest snapshot missed, and a completed checkpoint truncates the
// replayed history — so recovery converges to the last acknowledged
// write, not the last checkpoint. --fsync picks the ack policy:
// "always" (fsync before every ack), "group" (group commit: batch
// many acks per fsync, default) or "interval" (ack immediately,
// fsync periodically — bounded loss window).
//
// --mmap (default on) boots v3 snapshots as mmap'd read-only views:
// records and postings stay in the snapshot file's pages and
// materialize copy-on-write as writes touch them, so boot time and
// resident set stop scaling with corpus size (see cmd/benchboot).
// /statusz reports the mapped-vs-materialized byte split.
// --pprof-addr serves net/http/pprof on its own listener (off by
// default, never the tenant port) for heap and CPU profiles.
//
// --shards controls dataset index parallelism: "auto" (default, one
// shard per CPU) or a fixed count. Snapshots written under another
// layout reshard to the target on restore, so a checkpoint from a
// small box serves at full fan-out here. /statusz reports each
// dataset's shard count, ring generation and tombstone ratio as
// JSON, so operators can watch reshard progress.
//
// --cache-mb sizes the shared cross-request result cache (default
// 64 MB, 0 disables). Repeated queries against unchanged data — the
// common case for a published app's landing page — are answered from
// the cache; any write to an index invalidates its entries by
// generation stamp. /statusz reports hit/miss/eviction counters.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only on --pprof-addr's listener
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/host"
	"repro/internal/index"
	"repro/internal/wal"
)

// applyExecWorkers turns --exec-workers auto|off|N into shard-executor
// configuration: "auto" keeps the default GOMAXPROCS pool, "off"
// reverts query fan-out to the legacy per-query goroutine spawn, and N
// resizes the pool.
func applyExecWorkers(v string) error {
	switch v {
	case "", "auto":
		return nil
	case "off":
		index.SetExecutorEnabled(false)
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return fmt.Errorf("symphonyd: --exec-workers must be \"auto\", \"off\" or a positive integer, got %q", v)
	}
	index.ConfigureExecutor(n)
	return nil
}

// parseShards turns --shards auto|N into a core.Config.ShardTarget
// (0 = auto).
func parseShards(v string) (int, error) {
	if v == "" || v == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("symphonyd: --shards must be \"auto\" or a positive integer, got %q", v)
	}
	return n, nil
}

func main() {
	// All real work happens in run so every failure — including the
	// final shutdown checkpoint — propagates as an error and a nonzero
	// exit, instead of being logged and dropped. The crash-test harness
	// keys on the marker line plus exit status to tell a clean shutdown
	// (everything durable) from a dirty one (recovery must replay).
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Printf("symphonyd: clean shutdown")
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	seed := flag.Int64("seed", 1, "synthetic web seed")
	dataDir := flag.String("data-dir", "", "directory for store snapshots (empty = not durable)")
	checkpointEvery := flag.Duration("checkpoint-interval", 30*time.Second, "background checkpoint period with --data-dir")
	shards := flag.String("shards", "auto", "dataset index shard count: \"auto\" (one per CPU) or N")
	cacheMB := flag.Int("cache-mb", 64, "shared cross-request result cache size in MB (0 = disabled)")
	queryTimeout := flag.Duration("query-timeout", 2*time.Second, "per-query execution deadline (0 = unbounded)")
	tenantSlots := flag.Int("tenant-slots", 4, "concurrent queries allowed per tenant")
	tenantQueue := flag.Int("tenant-queue", 8, "queued queries allowed per tenant beyond the slots (0 = shed immediately)")
	retryAfter := flag.Int("retry-after", 1, "Retry-After seconds hint on shed (429) responses")
	walEnabled := flag.Bool("wal", true, "with --data-dir, layer a write-ahead log under the checkpoint cycle")
	fsync := flag.String("fsync", "group", "WAL fsync policy: always (fsync before every ack), group (batch commits), interval (periodic)")
	mmapMode := flag.String("mmap", "on", "boot from v3 snapshots as mmap'd views with copy-on-write materialization: on|off")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof on its own listener (empty = disabled)")
	execWorkers := flag.String("exec-workers", "auto", "shard executor workers: \"auto\" (GOMAXPROCS), \"off\" (legacy per-query goroutines) or N")
	flag.Parse()

	shardTarget, err := parseShards(*shards)
	if err != nil {
		return err
	}
	if err := applyExecWorkers(*execWorkers); err != nil {
		return err
	}
	fsyncPolicy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		return err
	}
	var mmapOn bool
	switch *mmapMode {
	case "on":
		mmapOn = true
	case "off":
	default:
		return fmt.Errorf("symphonyd: --mmap must be \"on\" or \"off\", got %q", *mmapMode)
	}

	// pprof gets its own listener so profiling endpoints never share a
	// port (or an audience) with tenant traffic; off by default.
	if *pprofAddr != "" {
		go func() {
			log.Printf("symphonyd: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("symphonyd: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := "http://" + *addr
	p := core.New(core.Config{Seed: *seed, ClickBase: base + "/click", ShardTarget: shardTarget, CacheMB: *cacheMB})
	gq, err := demo.GamerQueen(p, *seed, 10)
	if err != nil {
		return err
	}
	defer gq.Close()
	if _, err := demo.WineFinder(p, *seed, 10); err != nil {
		return err
	}
	if _, err := demo.VideoStore(p, *seed, 10); err != nil {
		return err
	}

	// Durability: demo seeding above defines the apps; the data dir
	// holds the designers' data. Restoring after seeding replaces the
	// freshly seeded records with the persisted state, so uploads and
	// edits from before the restart survive it.
	var cp *core.Checkpointer
	if *dataDir != "" {
		cp, err = p.NewCheckpointer(*dataDir, *checkpointEvery)
		if err != nil {
			return err
		}
		cp.Logf = log.Printf
		cp.MMap = mmapOn
		restored, err := cp.RestoreLatestContext(ctx)
		if err != nil {
			return err
		}
		if !restored {
			log.Printf("symphonyd: no snapshot in %s, starting from seeded data", *dataDir)
		}
		// WAL under the checkpoint cycle: replay the tail the last
		// snapshot missed, then log every acknowledged write, so boot
		// recovers to the last ack — not just the last checkpoint.
		if *walEnabled {
			st, err := cp.EnableWALContext(ctx, wal.Options{Policy: fsyncPolicy})
			if err != nil {
				return err
			}
			log.Printf("symphonyd: wal enabled (fsync=%s): replayed %d records (%d applied, %d skipped) from %d segments",
				fsyncPolicy, st.Records, st.Applied, st.Skipped, st.Segments)
		}
		cp.Start()
	}

	// Admission control: per-tenant concurrency quotas with a bounded
	// deadline-aware wait queue. One hot tenant saturates its own
	// slots and queue; everyone else's latency is unaffected.
	admission := host.NewAdmissionController(host.AdmissionConfig{
		Slots:             *tenantSlots,
		Queue:             *tenantQueue,
		RetryAfterSeconds: *retryAfter,
	})

	// /statusz: operator view of every dataset's index layout (shard
	// count, ring generation, tombstone ratio, in-flight reshards)
	// plus the admission counters, refreshed per request so reshard
	// progress and load shedding are visible live.
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		target := "auto"
		if shardTarget > 0 {
			target = strconv.Itoa(shardTarget)
		}
		var cacheStats any
		if p.Cache != nil {
			cacheStats = p.Cache.Stats()
		}
		var walStats any
		if cp != nil && cp.WAL() != nil {
			walStats = cp.WAL().Stats()
		}
		// Aggregate mapped-vs-heap residency across datasets so the
		// zero-copy boot is observable: mappedBytes drains toward
		// materializedBytes as copy-on-write promotes what the
		// workload writes.
		datasets := p.Store.Status()
		var mappedBytes, materializedBytes int64
		for _, st := range datasets {
			mappedBytes += st.MappedBytes
			materializedBytes += st.MaterializedBytes
		}
		if err := enc.Encode(map[string]any{
			"mmap": map[string]any{
				"mode":              *mmapMode,
				"mappedBytes":       mappedBytes,
				"materializedBytes": materializedBytes,
			},
			"shardTarget":  target,
			"executor":     index.GetExecutorStats(),
			"gomaxprocs":   runtime.GOMAXPROCS(0),
			"datasets":     datasets,
			"admission":    admission.Stats(),
			"queryTimeout": queryTimeout.String(),
			"cache":        cacheStats,
			"wal":          walStats,
		}); err != nil {
			log.Printf("symphonyd: statusz: %v", err)
		}
	})
	mux.Handle("/", p.ServeWith(base, core.ServeOptions{
		QueryTimeout: *queryTimeout,
		Admission:    admission,
	}))
	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("symphonyd: hosting %v\n", p.Registry.List())
		fmt.Printf("symphonyd: try %s/query?app=gamerqueen&q=%s\n", base, "game")
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("symphonyd: shutting down")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("symphonyd: shutdown: %v", err)
	}
	if cp != nil {
		// The final checkpoint shares the shutdown grace period: if it
		// cannot finish in time it aborts and the previous checkpoint
		// (plus the WAL, which CloseContext syncs and closes) stays a
		// complete recovery point — but the failure must surface, not
		// be logged and dropped: the exit status is the crash tests'
		// contract for "everything on disk, no replay needed".
		if err := cp.CloseContext(shutdownCtx); err != nil {
			return fmt.Errorf("symphonyd: final checkpoint: %w", err)
		}
		log.Printf("symphonyd: final checkpoint written to %s", cp.Path())
	}
	return nil
}
