// Command symphonyd hosts a demo Symphony platform over HTTP with the
// three paper applications published (GamerQueen, WineFinder,
// VideoStore). Visit:
//
//	/apps                          published applications
//	/query?app=gamerqueen&q=...    execute an application
//	/embed.js?app=gamerqueen       the designer's embed loader
//	/click?app=...&url=...         logged click redirect
//
// With --data-dir the daemon is durable: designers' proprietary data
// is restored from the directory on boot, checkpointed there
// periodically in the background, and written one final time on
// graceful shutdown (SIGINT/SIGTERM), so a kill/restart cycle loses
// nothing that was checkpointed or acknowledged at shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/demo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	seed := flag.Int64("seed", 1, "synthetic web seed")
	dataDir := flag.String("data-dir", "", "directory for store snapshots (empty = not durable)")
	checkpointEvery := flag.Duration("checkpoint-interval", 30*time.Second, "background checkpoint period with --data-dir")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := "http://" + *addr
	p := core.New(core.Config{Seed: *seed, ClickBase: base + "/click"})
	gq, err := demo.GamerQueen(p, *seed, 10)
	if err != nil {
		log.Fatal(err)
	}
	defer gq.Close()
	if _, err := demo.WineFinder(p, *seed, 10); err != nil {
		log.Fatal(err)
	}
	if _, err := demo.VideoStore(p, *seed, 10); err != nil {
		log.Fatal(err)
	}

	// Durability: demo seeding above defines the apps; the data dir
	// holds the designers' data. Restoring after seeding replaces the
	// freshly seeded records with the persisted state, so uploads and
	// edits from before the restart survive it.
	var cp *core.Checkpointer
	if *dataDir != "" {
		cp, err = p.NewCheckpointer(*dataDir, *checkpointEvery)
		if err != nil {
			log.Fatal(err)
		}
		cp.Logf = log.Printf
		restored, err := cp.RestoreLatest()
		if err != nil {
			log.Fatal(err)
		}
		if !restored {
			log.Printf("symphonyd: no snapshot in %s, starting from seeded data", *dataDir)
		}
		cp.Start()
	}

	srv := &http.Server{Addr: *addr, Handler: p.Serve(base)}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("symphonyd: hosting %v\n", p.Registry.List())
		fmt.Printf("symphonyd: try %s/query?app=gamerqueen&q=%s\n", base, "game")
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("symphonyd: shutting down")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("symphonyd: shutdown: %v", err)
	}
	if cp != nil {
		if err := cp.Close(); err != nil {
			log.Fatalf("symphonyd: final checkpoint: %v", err)
		}
		log.Printf("symphonyd: final checkpoint written to %s", cp.Path())
	}
}
