// Command symctl is the designer-facing command line for a demo
// Symphony platform: it walks the §II-B lifecycle — upload data,
// inspect the app config, query it, pull monetization reports, and
// ask for site suggestions — against an in-process platform seeded
// with the GamerQueen scenario.
//
// Usage:
//
//	symctl query -q "halo"            execute GamerQueen for a query
//	symctl serp -q "halo"             engine results page: hits + total + site facets
//	symctl config                     print the application JSON
//	symctl snippet                    print the embed snippet
//	symctl report                     traffic + revenue summary
//	symctl suggest -sites a.com,b.com related-site suggestions
//	symctl recommend                  supplemental sites for inventory
//	symctl structured -q "price:<30"  structured query over inventory
//	symctl load -i data.csv -dataset d -key sku   batched upload into a dataset
//	symctl snapshot -o store.snap     write a durable store snapshot
//	symctl restore -i store.snap      restore a snapshot and summarize
//	symctl reshard <tenant> <dataset> <n>  reshard a dataset index online
//	symctl status                     per-dataset shard layout
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/engine"
	"repro/internal/host"
	"repro/internal/ingest"
	"repro/internal/recommend"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/structured"
	"repro/internal/webcorpus"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	q := fs.String("q", "", "query text")
	sites := fs.String("sites", "ign.com,gamespot.com", "comma-separated seed sites")
	seed := fs.Int64("seed", 1, "synthetic web seed")
	out := fs.String("o", "store.snap", "snapshot output path (snapshot)")
	in := fs.String("i", "store.snap", "input path (restore: snapshot; load: data file)")
	dataset := fs.String("dataset", "", "target dataset name (load)")
	format := fs.String("format", "", "upload format csv|json|rss (load; empty = detect from filename)")
	key := fs.String("key", "", "column promoted to record key on inferred schemas (load)")
	legacy := fs.Bool("v1", false, "write the legacy v1 snapshot format (snapshot)")
	timeout := fs.Duration("timeout", 0, "overall command deadline (0 = none); Ctrl-C always cancels")
	fs.Parse(os.Args[2:])

	// Every subcommand runs under one context: SIGINT cancels it, and
	// --timeout adds a deadline. Long operations (serp, snapshot,
	// restore, reshard) abort mid-flight instead of running to
	// completion after the operator gives up.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	p := core.New(core.Config{Seed: *seed})
	sc, err := demo.GamerQueen(p, *seed, 10)
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()

	switch cmd {
	case "query":
		text := *q
		if text == "" {
			text = sc.Titles[0]
		}
		resp, err := p.Query(ctx, "gamerqueen", runtime.Query{Text: text})
		if err != nil {
			log.Fatal(err)
		}
		for _, block := range resp.Blocks {
			fmt.Printf("source %s (%s): %d items\n", block.SourceID, block.Kind, len(block.Items))
			for i, item := range block.Items {
				fmt.Printf("  %d. %s\n", i+1, item["title"])
				for suppID, suppItems := range block.SupplementalByItem[i] {
					for _, si := range suppItems {
						label := si["title"]
						if label == "" {
							label = "price=" + si["price"]
						}
						fmt.Printf("      [%s] %s\n", suppID, label)
					}
				}
			}
		}
	case "serp":
		// A full engine results page through one statistics session:
		// ranked hits, total count and the site facet sidebar share a
		// single cross-shard df/avgLen aggregation.
		text := *q
		if text == "" {
			text = sc.Titles[0] + " review"
		}
		page, err := p.Engine.Query(ctx, engine.Request{Query: text, Limit: 10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d total hits for %q\n", page.Total, text)
		for i, r := range page.Results {
			fmt.Printf("  %2d. %.3f  %s\n", i+1, r.Score, r.URL)
		}
		fmt.Println("sites:")
		for _, f := range page.SiteFacets {
			fmt.Printf("  %4d  %s\n", f.N, f.Value)
		}
	case "config":
		data, err := app.Marshal(sc.App)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	case "snippet":
		fmt.Println(host.EmbedSnippet("http://symphony.example", "gamerqueen"))
	case "report":
		// Generate a little traffic first so the report is non-empty.
		for _, t := range sc.Titles[:3] {
			if _, err := p.Query(ctx, "gamerqueen", runtime.Query{Text: t}); err != nil {
				log.Fatal(err)
			}
		}
		p.RecordClick("gamerqueen", "http://ign.com/review/1", "c1")
		s := p.TrafficSummary("gamerqueen")
		fmt.Printf("queries=%d clicks=%d adclicks=%d ctr=%.2f revenue=$%.2f users=%d\n",
			s.Queries, s.Clicks, s.AdClicks, s.CTR, s.Revenue, s.UniqueUsers)
		fmt.Println("top queries:")
		for _, c := range s.TopQueries {
			fmt.Printf("  %4d  %s\n", c.N, c.Label)
		}
		fmt.Print("\nDownloadable click log (CSV):\n")
		fmt.Print(p.Log.ExportCSV("gamerqueen"))
	case "suggest":
		demo.SeedEngineClicks(p, webcorpus.TopicGames, 6)
		seeds := strings.Split(*sites, ",")
		for _, sg := range p.SiteSuggest(seeds, 5) {
			fmt.Printf("%.3f  %s\n", sg.Score, sg.Site)
		}
	case "recommend":
		ds, err := p.Store.DatasetContext(ctx, "gamerqueen", "ann", "inventory", store.PermRead)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := recommend.SupplementalSites(ctx, p.Engine, ds, recommend.Options{
			DriveField: "title", ProbeSuffix: "review", Limit: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("recommended supplemental sites for 'inventory':")
		for _, r := range recs {
			fmt.Printf("  %.3f (%d probe hits)  %s\n", r.Score, r.Hits, r.Site)
		}
	case "structured":
		ds, err := p.Store.DatasetContext(ctx, "gamerqueen", "ann", "inventory", store.PermRead)
		if err != nil {
			log.Fatal(err)
		}
		text := *q
		if text == "" {
			text = "sort:title"
		}
		hits, err := structured.Apply(ctx, ds, text, 10)
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range hits {
			fmt.Printf("%s  %s\n", h.Record["sku"], h.Record["title"])
		}
	case "load":
		// symctl load -i data.csv -dataset inventory2 [-key sku]: a
		// batched upload through the ingest path — one parse, one
		// AddBatch (parallel analysis, one lock acquisition per index
		// shard), one report. symctl acts as Ann in the gamerqueen
		// tenant, so the usual write grant rules apply.
		if *dataset == "" {
			fmt.Fprintln(os.Stderr, "usage: symctl load -i <file> -dataset <name> [-format csv|json|rss] [-key field]")
			os.Exit(2)
		}
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		fmtName := ingest.Format(*format)
		if fmtName == "" {
			detected, err := ingest.DetectFormat(*in)
			if err != nil {
				log.Fatal(err)
			}
			fmtName = detected
		}
		up := &ingest.Uploader{Store: p.Store}
		start := time.Now()
		rep, err := up.Upload(ingest.Options{
			Tenant: "gamerqueen", Actor: "ann", Dataset: *dataset,
			Format: fmtName, KeyField: *key,
		}, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		rate := float64(rep.Loaded) / elapsed.Seconds()
		if rep.CreatedDataset {
			fmt.Printf("created dataset %s with inferred schema\n", rep.Dataset)
		}
		fmt.Printf("loaded %d/%d records (%s) in %v (%.0f docs/s)\n",
			rep.Loaded, rep.Received, rep.Format, elapsed.Round(time.Millisecond), rate)
		for i, reason := range rep.Rejected {
			fmt.Printf("  rejected #%d: %s\n", i, reason)
		}
	case "snapshot":
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if *legacy {
			err = p.Store.SnapshotV1(f)
		} else {
			err = p.Store.SnapshotContext(ctx, f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		format := "v2 (framed, parallel)"
		if *legacy {
			format = "v1 (legacy JSON)"
		}
		if info, err := os.Stat(*out); err == nil {
			fmt.Printf("wrote %s snapshot to %s (%d bytes)\n", format, *out, info.Size())
		} else {
			fmt.Printf("wrote %s snapshot to %s\n", format, *out)
		}
	case "reshard":
		// symctl reshard <tenant> <dataset> <n>: drive an online shard
		// migration by hand. symctl acts as Ann, so the usual write
		// grant rules apply.
		args := fs.Args()
		if len(args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: symctl reshard <tenant> <dataset> <n>")
			os.Exit(2)
		}
		n, err := strconv.Atoi(args[2])
		if err != nil || n < 1 {
			log.Fatalf("symctl: shard count %q must be a positive integer", args[2])
		}
		ds, err := p.Store.DatasetContext(ctx, args[0], "ann", args[1], store.PermWrite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("before: %d shards (ring gen %d), %d records\n", ds.NumShards(), ds.RingGen(), ds.Len())
		if err := p.Store.ReshardContext(ctx, args[0], "ann", args[1], n); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after:  %d shards (ring gen %d), %d records\n", ds.NumShards(), ds.RingGen(), ds.Len())
	case "status":
		fmt.Printf("%-12s %-12s %8s %7s %8s %10s\n", "TENANT", "DATASET", "RECORDS", "SHARDS", "RING-GEN", "TOMBSTONE")
		for _, st := range p.Store.Status() {
			fmt.Printf("%-12s %-12s %8d %7d %8d %9.2f%%\n",
				st.Tenant, st.Dataset, st.Records, st.Shards, st.RingGen, 100*st.TombstoneRatio)
		}
	case "restore":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		err = p.Store.RestoreContext(ctx, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restored %s:\n", *in)
		for _, tenant := range p.Store.Tenants() {
			names, err := p.Store.Datasets(tenant, "ann")
			if err != nil {
				// symctl acts as Ann; other designers' spaces stay
				// private even on the admin path.
				fmt.Printf("  tenant %s (access denied for ann)\n", tenant)
				continue
			}
			fmt.Printf("  tenant %s:\n", tenant)
			for _, name := range names {
				ds, err := p.Store.DatasetContext(ctx, tenant, "ann", name, store.PermRead)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("    %s: %d records\n", name, ds.Len())
			}
		}
		// Prove the restored indexes answer queries without reindexing.
		if ds, err := p.Store.DatasetContext(ctx, "gamerqueen", "ann", "inventory", store.PermRead); err == nil {
			if hits, err := ds.SearchContext(ctx, store.SearchRequest{Query: "adventure", Limit: 3}); err == nil {
				fmt.Printf("  sample search 'adventure': %d hits\n", len(hits))
			}
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: symctl {query|serp|config|snippet|report|suggest|recommend|structured|load|snapshot|restore|reshard|status} [flags]")
	os.Exit(2)
}
