#!/bin/sh
# allocgate: the warm-path allocation budget for the query pipeline.
#
# Runs the BenchmarkQuery family with -benchmem and compares allocs/op
# against the committed baseline in scripts/allocgate_baseline.txt
# (the "after" numbers in BENCH_query.json). A variant may regress by
# at most 20%, with a +2 absolute grace so tiny baselines (4 allocs)
# are not failed by a single incidental allocation. Anything more
# fails: allocation creep on the warm path is exactly the regression
# the pooled-scratch redesign exists to prevent, and it never shows up
# in correctness tests.
#
#   scripts/allocgate.sh            check (exit 1 on regressions)
#   scripts/allocgate.sh --update   regenerate the baseline
#
# allocs/op is deterministic for these benchmarks (unlike ns/op), so a
# single -benchtime=100x pass is a stable measurement.
set -eu

cd "$(dirname "$0")/.."
baseline=scripts/allocgate_baseline.txt
out=$(mktemp)
trap 'rm -f "$out"' EXIT

go test ./internal/index/ -run '^$' -bench 'BenchmarkQuery($|/)' \
    -benchmem -benchtime=100x | tee "$out"

measured() {
    # "BenchmarkQuery/match  100  5238 ns/op  672 B/op  4 allocs/op"
    # -> "BenchmarkQuery/match 4"
    awk '/^BenchmarkQuery/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
        for (i = 2; i <= NF; i++)
            if ($i == "allocs/op") print name, $(i-1)
    }' "$out" | sort
}

if [ "${1:-}" = "--update" ]; then
    measured >"$baseline"
    echo "allocgate: baseline regenerated with $(wc -l <"$baseline") entries"
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "allocgate: missing $baseline (run scripts/allocgate.sh --update once)" >&2
    exit 1
fi

got=$(mktemp)
measured >"$got"
awk '
    NR == FNR { base[$1] = $2; next }
    {
        seen[$1] = 1
        if (!($1 in base)) {
            printf "allocgate: %s has no baseline entry\n", $1 > "/dev/stderr"
            bad = 1
            next
        }
        limit = base[$1] * 1.2 + 2
        if ($2 > limit) {
            printf "allocgate: %s regressed: %d allocs/op vs baseline %d (limit %.0f)\n", $1, $2, base[$1], limit > "/dev/stderr"
            bad = 1
        }
    }
    END {
        for (n in base) if (!(n in seen)) {
            printf "allocgate: %s in baseline but not in the run\n", n > "/dev/stderr"
            bad = 1
        }
        if (bad) {
            printf "allocgate: fix the allocation (preferred) or consciously rebaseline with scripts/allocgate.sh --update\n" > "/dev/stderr"
            exit 1
        }
    }' "$baseline" "$got"
rm -f "$got"
echo "allocgate: ok"
