#!/bin/sh
# ctxgate: the context-first API gate for the query-path packages.
#
# Every exported function or method in internal/engine, internal/store
# and internal/index either takes `ctx context.Context` as its first
# parameter or is grandfathered in scripts/ctxgate_allow.txt (the
# pre-redesign constructor/accessor surface that has no blocking work
# to cancel). The deprecated.go compatibility wrappers kept for one
# release after the redesign are gone; every caller is ctx-first now.
#
# A NEW exported entry point without ctx therefore fails CI until it
# either gains the parameter or is consciously added to the allowlist
# in the same review.
#
#   scripts/ctxgate.sh            check (exit 1 on violations)
#   scripts/ctxgate.sh --update   regenerate the allowlist
set -eu

cd "$(dirname "$0")/.."
allow=scripts/ctxgate_allow.txt

# Exported func/method declarations whose first parameter is not ctx,
# as "path:Name". Receiver and parameter list are stripped; generic
# type parameters on funcs keep the name intact because we cut at the
# first '(' or '['.
offenders() {
    for dir in internal/engine internal/store internal/index; do
        for f in "$dir"/*.go; do
            case "$f" in
            *_test.go) continue ;;
            esac
            # "func Name(" or "func (r *Recv) Name(" with an exported
            # Name; then drop lines whose first param is ctx.
            grep -nE '^func (\([^)]*\) )?[A-Z][A-Za-z0-9_]*[([]' "$f" |
                grep -vE '[([]ctx context\.Context' |
                sed -E "s|^([0-9]+):func (\([^)]*\) )?([A-Z][A-Za-z0-9_]*).*|$f:\3|"
        done
    done | sort -u
}

if [ "${1:-}" = "--update" ]; then
    offenders >"$allow"
    echo "ctxgate: allowlist regenerated with $(wc -l <"$allow") entries"
    exit 0
fi

if [ ! -f "$allow" ]; then
    echo "ctxgate: missing $allow (run scripts/ctxgate.sh --update once)" >&2
    exit 1
fi

new=$(offenders | comm -13 "$allow" - || true)
if [ -n "$new" ]; then
    echo "ctxgate: new exported entry points without a ctx first parameter:" >&2
    echo "$new" | sed 's/^/  /' >&2
    echo "ctxgate: thread context.Context through (see README: Serving & QoS)," >&2
    echo "ctxgate: or append to $allow if there is genuinely nothing to cancel." >&2
    exit 1
fi
echo "ctxgate: ok"
