#!/usr/bin/env bash
# crashtest.sh — kill -9 loop against a real symphonyd.
#
# Each cycle boots the daemon durable (--data-dir + WAL), uploads
# acknowledged batches through /admin/upload, SIGKILLs the process at a
# randomized point (sometimes mid-upload), reboots, and asserts every
# acknowledged record is served again. The run ends with a graceful
# SIGTERM cycle asserting the clean-shutdown marker and a zero exit
# status — the contract the daemon's run() refactor exists to provide.
#
#   CYCLES=n   kill cycles (default 5)
#   FSYNC=p    WAL fsync policy (default always — the strict policy;
#              group/interval ack before this script's accounting, so
#              only "always" supports the acked>=served assertion)
#   PORT=p     listen port (default 18941)
set -euo pipefail
cd "$(dirname "$0")/.."

cycles=${CYCLES:-5}
fsync=${FSYNC:-always}
addr=127.0.0.1:${PORT:-18941}
root=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null; rm -rf "$root"' EXIT

go build -o "$root/symphonyd" ./cmd/symphonyd

boot() {
    "$root/symphonyd" -addr "$addr" -data-dir "$root/data" \
        -checkpoint-interval 2s -fsync "$fsync" >>"$root/daemon.log" 2>&1 &
    pid=$!
    for _ in $(seq 100); do
        curl -sf "http://$addr/statusz" >/dev/null 2>&1 && return 0
        kill -0 "$pid" 2>/dev/null || { echo "daemon died on boot:"; tail -5 "$root/daemon.log"; exit 1; }
        sleep 0.1
    done
    echo "daemon never came up"; exit 1
}

served() {
    curl -sf "http://$addr/statusz" |
        awk '/"dataset": "crash"/{f=1} f && /"records"/{gsub(/[^0-9]/,""); print; exit}'
}

# upload n rows with unique skus; echoes the row count on ack.
upload() {
    local tag=$1 n=$2 body="sku,title,price"
    for ((r = 0; r < n; r++)); do
        body+=$'\n'"$tag-$r,crash test item $tag $r,$((r + 1))"
    done
    curl -sf -X POST -H 'X-Symphony-Designer: ann' --data-binary "$body" \
        "http://$addr/admin/upload?tenant=gamerqueen&dataset=crash&format=csv&key=sku" >/dev/null &&
        echo "$n"
}

acked=0
for ((i = 1; i <= cycles; i++)); do
    boot
    got=$(served); got=${got:-0}
    if ((got < acked)); then
        echo "FAIL cycle $i: $acked rows acked before the kill, only $got served after recovery"
        tail -20 "$root/daemon.log"
        exit 1
    fi
    # A few acknowledged batches...
    for ((j = 0, n = RANDOM % 4 + 1; j < n; j++)); do
        acked=$((acked + $(upload "c$i-$j" 20 || echo 0)))
    done
    # ...then one in flight when the SIGKILL lands (never counted).
    upload "c$i-doomed" 50 >/dev/null 2>&1 &
    sleep "0.0$((RANDOM % 6))"
    kill -9 "$pid"
    wait "$pid" 2>/dev/null || true
    pid=""
    wait 2>/dev/null || true
    echo "cycle $i: killed with $acked rows acked (served $got at boot)"
done

# Graceful finale: SIGTERM must produce the marker and exit 0.
boot
acked=$((acked + $(upload final 20)))
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if ((rc != 0)); then
    echo "FAIL: graceful shutdown exited $rc"; tail -10 "$root/daemon.log"; exit 1
fi
grep -q 'symphonyd: clean shutdown' "$root/daemon.log" ||
    { echo "FAIL: clean-shutdown marker missing"; tail -10 "$root/daemon.log"; exit 1; }

boot
got=$(served)
kill -TERM "$pid"; wait "$pid" || true; pid=""
if ((got < acked)); then
    echo "FAIL: after clean shutdown $acked acked, $got served"; exit 1
fi
echo "PASS: $cycles kill cycles + clean shutdown, $acked rows acked, $got served"
